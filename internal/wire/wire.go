// Package wire implements the message protocol between the HyperDrive
// scheduler and its node agents: length-prefixed JSON frames over any
// io.ReadWriter (normally a net.Conn). It replaces the gRPC transport
// used by the paper's prototype with a stdlib-only equivalent that keeps
// the same request/response and server-streaming (stats upload)
// semantics.
package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// MaxFrameSize bounds a single frame (64 MiB), comfortably above the
// largest CRIU-style snapshot the paper reports (~44 MB) while still
// rejecting garbage length prefixes from corrupted streams.
const MaxFrameSize = 64 << 20

// MsgType identifies the purpose of a frame.
type MsgType string

// Protocol message types. Scheduler -> agent: job control. Agent ->
// scheduler: stats and lifecycle reports.
const (
	// Scheduler -> agent.
	MsgStartJob     MsgType = "start_job"
	MsgResumeJob    MsgType = "resume_job"
	MsgSuspendJob   MsgType = "suspend_job"
	MsgTerminateJob MsgType = "terminate_job"
	MsgDecision     MsgType = "decision"
	MsgPing         MsgType = "ping"

	// Agent -> scheduler.
	MsgHello     MsgType = "hello"
	MsgAppStat   MsgType = "app_stat"
	MsgIterDone  MsgType = "iteration_finished"
	MsgJobExited MsgType = "job_exited"
	MsgSnapshot  MsgType = "snapshot"
	MsgAck       MsgType = "ack"
	MsgError     MsgType = "error"
	MsgPong      MsgType = "pong"
	// MsgAppStatBatch carries several AppStat payloads in one frame. An
	// agent running many concurrent jobs on one connection coalesces
	// the statistics that accumulate between decision boundaries, so a
	// server multiplexing hundreds of streams decodes one frame instead
	// of N (one length prefix, one JSON document, one type dispatch).
	MsgAppStatBatch MsgType = "app_stat_batch"
)

// knownTypes registers every frame type this protocol version defines.
// Recv consults it so a corrupted or hostile peer cannot route frames
// past the per-type switches in the scheduler and agent read loops:
// those switches are checked for exhaustiveness against *this* set, so
// anything outside it must die at the transport.
var knownTypes = map[MsgType]bool{
	MsgStartJob:     true,
	MsgResumeJob:    true,
	MsgSuspendJob:   true,
	MsgTerminateJob: true,
	MsgDecision:     true,
	MsgPing:         true,
	MsgHello:        true,
	MsgAppStat:      true,
	MsgIterDone:     true,
	MsgJobExited:    true,
	MsgSnapshot:     true,
	MsgAck:          true,
	MsgError:        true,
	MsgPong:         true,
	MsgAppStatBatch: true,
}

// Known reports whether t is a frame type this protocol version
// defines.
func (t MsgType) Known() bool { return knownTypes[t] }

// UnknownTypeError reports a structurally valid frame whose type tag is
// not part of the protocol. It is distinct from FrameError (malformed
// bytes) so callers can tell "corrupt stream" from "peer speaks a newer
// protocol".
type UnknownTypeError struct {
	Type MsgType
}

func (e *UnknownTypeError) Error() string {
	return fmt.Sprintf("wire: unknown message type %q", string(e.Type))
}

// Message is one frame: a type tag plus a JSON-encoded payload.
type Message struct {
	Type    MsgType         `json:"type"`
	Seq     uint64          `json:"seq,omitempty"`
	Payload json.RawMessage `json:"payload,omitempty"`
}

// NewMessage builds a Message, marshaling payload to JSON. A nil
// payload produces an empty payload field.
func NewMessage(t MsgType, payload interface{}) (Message, error) {
	m := Message{Type: t}
	if payload == nil {
		return m, nil
	}
	raw, err := json.Marshal(payload)
	if err != nil {
		return Message{}, fmt.Errorf("wire: marshal %s payload: %w", t, err)
	}
	m.Payload = raw
	return m, nil
}

// Decode unmarshals the payload into v.
func (m Message) Decode(v interface{}) error {
	if len(m.Payload) == 0 {
		return fmt.Errorf("wire: %s message has no payload", m.Type)
	}
	if err := json.Unmarshal(m.Payload, v); err != nil {
		return fmt.Errorf("wire: decode %s payload: %w", m.Type, err)
	}
	return nil
}

// FrameError describes a malformed frame.
type FrameError struct {
	Reason string
	Size   uint32
}

func (e *FrameError) Error() string {
	return fmt.Sprintf("wire: bad frame (%s, size %d)", e.Reason, e.Size)
}

// Conn frames Messages over an underlying stream. Reads and writes are
// individually serialized so a Conn may be shared by a reader goroutine
// and multiple writer goroutines.
type Conn struct {
	wmu sync.Mutex
	w   *bufio.Writer
	rmu sync.Mutex
	r   *bufio.Reader

	closer io.Closer
}

// NewConn wraps rw in a framed connection. If rw implements io.Closer,
// Close will close it.
func NewConn(rw io.ReadWriter) *Conn {
	c := &Conn{
		w: bufio.NewWriter(rw),
		r: bufio.NewReader(rw),
	}
	if cl, ok := rw.(io.Closer); ok {
		c.closer = cl
	}
	return c
}

// Send writes one message frame: 4-byte big-endian length, then the
// JSON body.
func (c *Conn) Send(m Message) error {
	body, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("wire: marshal frame: %w", err)
	}
	if len(body) > MaxFrameSize {
		return &FrameError{Reason: "frame too large", Size: uint32(len(body) & 0xffffffff)}
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	// Frame atomicity is the point of wmu: header, body, and flush must
	// reach the stream as one unit or concurrent senders interleave
	// garbage. Blocking on a slow peer here is the protocol's behavior,
	// not an accident.
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if _, err := c.w.Write(hdr[:]); err != nil { //hdlint:ignore locksafe wmu exists to make the frame write atomic; see above
		return fmt.Errorf("wire: write header: %w", err)
	}
	if _, err := c.w.Write(body); err != nil { //hdlint:ignore locksafe wmu exists to make the frame write atomic; see above
		return fmt.Errorf("wire: write body: %w", err)
	}
	return c.w.Flush() //hdlint:ignore locksafe wmu exists to make the frame write atomic; see above
}

// SendTyped is Send(NewMessage(t, payload)).
func (c *Conn) SendTyped(t MsgType, payload interface{}) error {
	m, err := NewMessage(t, payload)
	if err != nil {
		return err
	}
	return c.Send(m)
}

// Recv reads one message frame. It returns io.EOF when the stream ends
// cleanly between frames.
func (c *Conn) Recv() (Message, error) {
	// rmu makes the header+body read atomic so concurrent receivers
	// cannot split a frame; waiting for bytes under it is the
	// protocol's behavior, mirroring Send's wmu.
	c.rmu.Lock()
	defer c.rmu.Unlock()
	var hdr [4]byte
	if _, err := io.ReadFull(c.r, hdr[:]); err != nil { //hdlint:ignore locksafe rmu exists to make the frame read atomic; see above
		if err == io.EOF {
			return Message{}, io.EOF
		}
		return Message{}, fmt.Errorf("wire: read header: %w", err)
	}
	size := binary.BigEndian.Uint32(hdr[:])
	if size == 0 {
		return Message{}, &FrameError{Reason: "zero-length frame", Size: 0}
	}
	if size > MaxFrameSize {
		return Message{}, &FrameError{Reason: "frame too large", Size: size}
	}
	// Grow the body buffer with the bytes that actually arrive instead
	// of trusting the length prefix: a corrupt or hostile peer claiming
	// MaxFrameSize on a short stream must not cost a 64 MiB allocation.
	var body bytes.Buffer
	if _, err := io.CopyN(&body, c.r, int64(size)); err != nil { //hdlint:ignore locksafe rmu exists to make the frame read atomic; see above
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Message{}, fmt.Errorf("wire: read body: %w", err)
	}
	var m Message
	if err := json.Unmarshal(body.Bytes(), &m); err != nil {
		return Message{}, &FrameError{Reason: "invalid JSON: " + err.Error(), Size: size}
	}
	if m.Type == "" {
		return Message{}, &FrameError{Reason: "missing type", Size: size}
	}
	if !m.Type.Known() {
		return Message{}, &UnknownTypeError{Type: m.Type}
	}
	return m, nil
}

// Close closes the underlying stream if it supports closing.
func (c *Conn) Close() error {
	if c.closer != nil {
		return c.closer.Close()
	}
	return nil
}

// --- Payload schemas shared by scheduler and agents. ---

// TraceContext is the distributed-tracing identity stamped onto job
// lifecycle frames: TraceID names the trace the job belongs to and
// SpanID the sender-side span that caused the frame, so the receiver
// can record its own work as a child span. Both fields are optional —
// frames from peers that predate tracing (or run with it off) simply
// omit them and decode to the zero value.
type TraceContext struct {
	TraceID string `json:"traceId,omitempty"`
	SpanID  string `json:"spanId,omitempty"`
}

// StartJobPayload asks an agent to begin (or resume) training a
// configuration. History carries the metric curve so far so a resumed
// job's agent-side curve prediction has the full trajectory (paper
// §5.2: "the learning curve history is sent to the new Node Agent when
// the job is resumed").
type StartJobPayload struct {
	JobID      string             `json:"jobId"`
	Workload   string             `json:"workload"` // workload registry name
	Config     map[string]float64 `json:"config"`
	MaxEpoch   int                `json:"maxEpoch"`
	Seed       int64              `json:"seed"`
	Snapshot   []byte             `json:"snapshot,omitempty"` // resume state
	History    []float64          `json:"history,omitempty"`  // metric curve so far
	StatPeriod int                `json:"statPeriod"`         // epochs between stat reports
	TraceContext
}

// DecisionPayload carries the SAP's OnIterationFinish verdict back to
// the agent that raised the iteration boundary, along with the
// scheduler-side prediction behind it (zero off evaluation
// boundaries) so agent-side logs can explain why a job was suspended
// or terminated.
type DecisionPayload struct {
	JobID      string  `json:"jobId"`
	Decision   string  `json:"decision"` // "continue" | "suspend" | "terminate"
	Confidence float64 `json:"confidence,omitempty"`
	ERTSeconds float64 `json:"ertSeconds,omitempty"`
	Class      string  `json:"class,omitempty"`
	TraceContext
}

// JobControlPayload addresses a running job (suspend/terminate).
type JobControlPayload struct {
	JobID string `json:"jobId"`
	TraceContext
}

// HelloPayload introduces an agent to the scheduler.
type HelloPayload struct {
	AgentID string `json:"agentId"`
	Slots   int    `json:"slots"`
}

// AppStatPayload reports one application statistic sample (paper §4.2:
// "model-generated application statistics such as performance stats").
type AppStatPayload struct {
	JobID    string  `json:"jobId"`
	Epoch    int     `json:"epoch"`
	Metric   float64 `json:"metric"`           // accuracy or reward
	Dur0nsec int64   `json:"epochDurationNs"`  // measured epoch duration
	Predict  float64 `json:"pvalue,omitempty"` // agent-side curve prediction
	HasPred  bool    `json:"hasPred,omitempty"`
}

// AppStatBatchPayload is the body of MsgAppStatBatch: the statistics
// an agent accumulated across its concurrent jobs since the last
// flush, in emission order. Receivers process entries exactly as if
// each had arrived in its own MsgAppStat frame.
type AppStatBatchPayload struct {
	Stats []AppStatPayload `json:"stats"`
}

// IterDonePayload signals an iteration boundary so the SAP can decide
// continue/suspend/terminate.
type IterDonePayload struct {
	JobID string `json:"jobId"`
	Epoch int    `json:"epoch"`
	TraceContext
}

// JobExitedPayload reports job completion or failure.
type JobExitedPayload struct {
	JobID  string `json:"jobId"`
	Epoch  int    `json:"epoch"`
	Reason string `json:"reason"` // "completed" | "terminated" | "suspended" | "error"
	Error  string `json:"error,omitempty"`
	TraceContext
}

// SnapshotPayload uploads a suspended job's training state to the
// scheduler's AppStat DB (paper §4.2: state is synchronized so any
// machine can resume training).
type SnapshotPayload struct {
	JobID string `json:"jobId"`
	Epoch int    `json:"epoch"`
	State []byte `json:"state"`
	TraceContext
}

// ErrorPayload reports an agent-side failure.
type ErrorPayload struct {
	JobID   string `json:"jobId,omitempty"`
	Message string `json:"message"`
}
