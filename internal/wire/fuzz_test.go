package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"testing"
)

// fuzzFrame wraps body in a length-prefixed frame for seeding.
func fuzzFrame(body []byte) []byte {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	return append(hdr[:], body...)
}

// jsonEqual compares two JSON payloads modulo whitespace (Send compacts
// marshaler output, so a received payload with extra whitespace is
// re-sent compacted). Empty payloads are equal to each other only.
func jsonEqual(a, b []byte) bool {
	if len(a) == 0 || len(b) == 0 {
		return len(a) == len(b)
	}
	var ca, cb bytes.Buffer
	if json.Compact(&ca, a) != nil || json.Compact(&cb, b) != nil {
		return bytes.Equal(a, b)
	}
	return bytes.Equal(ca.Bytes(), cb.Bytes())
}

// FuzzDecode feeds arbitrary byte streams to Conn.Recv. Invariants: no
// panic; every accepted message carries a known type; anything Recv
// accepts survives a Send/Recv round trip unchanged.
func FuzzDecode(f *testing.F) {
	f.Add(fuzzFrame([]byte(`{"type":"ping"}`)))
	f.Add(fuzzFrame([]byte(`{"type":"app_stat","seq":7,"payload":{"jobId":"j1","epoch":3,"metric":0.5,"epochDurationNs":12}}`)))
	f.Add(fuzzFrame([]byte(`{"type":"hello","payload":{"agentId":"a1","slots":2}}`)))
	f.Add(fuzzFrame([]byte(`{"type":"snapshot","payload":{"jobId":"j","epoch":1,"state":"AAEC"}}`)))
	f.Add(fuzzFrame([]byte(`{"type":"warp_drive"}`))) // unknown type
	f.Add(fuzzFrame([]byte(`{"payload":null}`)))      // missing type
	f.Add(fuzzFrame([]byte(`{not json`)))
	f.Add([]byte{0, 0, 0, 0})             // zero-length frame
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}) // oversize claim
	f.Add([]byte{0, 0})                   // truncated header
	f.Add(append(fuzzFrame([]byte(`{"type":"pong","seq":1}`)), fuzzFrame([]byte(`{"type":"ack"}`))...))

	f.Fuzz(func(t *testing.T, data []byte) {
		c := NewConn(bytes.NewBuffer(data))
		for {
			m, err := c.Recv()
			if err != nil {
				return // every malformed stream must end in an error, not a panic
			}
			if m.Type == "" || !m.Type.Known() {
				t.Fatalf("Recv accepted message with unknown type %q", m.Type)
			}
			var buf bytes.Buffer
			rt := NewConn(&buf)
			if err := rt.Send(m); err != nil {
				t.Fatalf("Send of accepted message failed: %v", err)
			}
			m2, err := rt.Recv()
			if err != nil {
				t.Fatalf("Recv of re-sent message failed: %v", err)
			}
			if m2.Type != m.Type || m2.Seq != m.Seq || !jsonEqual(m.Payload, m2.Payload) {
				t.Fatalf("round trip changed message: %+v != %+v", m2, m)
			}
		}
	})
}
