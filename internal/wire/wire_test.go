package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"net"
	"runtime"
	"sync"
	"testing"
)

// pipeRW adapts net.Pipe ends for tests.
func pipePair() (*Conn, *Conn) {
	a, b := net.Pipe()
	return NewConn(a), NewConn(b)
}

func TestRoundTrip(t *testing.T) {
	a, b := pipePair()
	defer a.Close()
	defer b.Close()

	want := AppStatPayload{JobID: "job-1", Epoch: 7, Metric: 0.42, Dur0nsec: 123}
	go func() {
		if err := a.SendTyped(MsgAppStat, want); err != nil {
			t.Error(err)
		}
	}()
	m, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != MsgAppStat {
		t.Fatalf("type = %v, want %v", m.Type, MsgAppStat)
	}
	var got AppStatPayload
	if err := m.Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("payload = %+v, want %+v", got, want)
	}
}

func TestRoundTripNilPayload(t *testing.T) {
	a, b := pipePair()
	defer a.Close()
	defer b.Close()
	go func() {
		if err := a.SendTyped(MsgPing, nil); err != nil {
			t.Error(err)
		}
	}()
	m, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != MsgPing {
		t.Fatalf("type = %v, want ping", m.Type)
	}
	var v struct{}
	if err := m.Decode(&v); err == nil {
		t.Fatal("Decode of empty payload should error")
	}
}

func TestManyMessagesInOrder(t *testing.T) {
	a, b := pipePair()
	defer a.Close()
	defer b.Close()
	const n = 200
	go func() {
		for i := 0; i < n; i++ {
			if err := a.SendTyped(MsgIterDone, IterDonePayload{JobID: "j", Epoch: i}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < n; i++ {
		m, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		var p IterDonePayload
		if err := m.Decode(&p); err != nil {
			t.Fatal(err)
		}
		if p.Epoch != i {
			t.Fatalf("out of order: epoch %d at position %d", p.Epoch, i)
		}
	}
}

func TestConcurrentWriters(t *testing.T) {
	a, b := pipePair()
	defer a.Close()
	defer b.Close()
	const writers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := a.SendTyped(MsgPing, nil); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	got := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		for got < writers*per {
			if _, err := b.Recv(); err != nil {
				t.Error(err)
				return
			}
			got++
		}
	}()
	wg.Wait()
	<-done
	if got != writers*per {
		t.Fatalf("received %d frames, want %d", got, writers*per)
	}
}

type bufCloser struct {
	bytes.Buffer
	closed bool
}

func (b *bufCloser) Close() error { b.closed = true; return nil }

func TestCloseClosesUnderlying(t *testing.T) {
	var buf bufCloser
	c := NewConn(&buf)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if !buf.closed {
		t.Fatal("underlying closer not closed")
	}
}

func TestCloseWithoutCloser(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(&buf)
	if err := c.Close(); err != nil {
		t.Fatal("Close on non-closer should be nil")
	}
}

func TestRecvEOF(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(&buf)
	if _, err := c.Recv(); err != io.EOF {
		t.Fatalf("err = %v, want io.EOF", err)
	}
}

func TestRecvRejectsZeroFrame(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 0})
	c := NewConn(&buf)
	var fe *FrameError
	if _, err := c.Recv(); !errors.As(err, &fe) {
		t.Fatalf("err = %v, want FrameError", err)
	}
}

func TestRecvRejectsOversizeFrame(t *testing.T) {
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrameSize+1)
	buf.Write(hdr[:])
	c := NewConn(&buf)
	var fe *FrameError
	if _, err := c.Recv(); !errors.As(err, &fe) {
		t.Fatalf("err = %v, want FrameError", err)
	}
}

func TestRecvRejectsBadJSON(t *testing.T) {
	var buf bytes.Buffer
	body := []byte("{not json")
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	buf.Write(hdr[:])
	buf.Write(body)
	c := NewConn(&buf)
	var fe *FrameError
	if _, err := c.Recv(); !errors.As(err, &fe) {
		t.Fatalf("err = %v, want FrameError", err)
	}
}

func TestRecvRejectsMissingType(t *testing.T) {
	var buf bytes.Buffer
	body := []byte(`{"payload": null}`)
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	buf.Write(hdr[:])
	buf.Write(body)
	c := NewConn(&buf)
	var fe *FrameError
	if _, err := c.Recv(); !errors.As(err, &fe) {
		t.Fatalf("err = %v, want FrameError", err)
	}
}

func TestRecvRejectsUnknownType(t *testing.T) {
	var buf bytes.Buffer
	body := []byte(`{"type":"warp_drive"}`)
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	buf.Write(hdr[:])
	buf.Write(body)
	c := NewConn(&buf)
	var ute *UnknownTypeError
	if _, err := c.Recv(); !errors.As(err, &ute) {
		t.Fatalf("err = %v, want UnknownTypeError", err)
	} else if ute.Type != "warp_drive" {
		t.Fatalf("rejected type = %q, want warp_drive", ute.Type)
	}
}

func TestKnownCoversDeclaredTypes(t *testing.T) {
	all := []MsgType{
		MsgStartJob, MsgResumeJob, MsgSuspendJob, MsgTerminateJob,
		MsgDecision, MsgPing, MsgHello, MsgAppStat, MsgIterDone,
		MsgJobExited, MsgSnapshot, MsgAck, MsgError, MsgPong,
	}
	for _, mt := range all {
		if !mt.Known() {
			t.Errorf("declared type %q not in the known set", mt)
		}
	}
	if MsgType("").Known() || MsgType("warp_drive").Known() {
		t.Error("undeclared types must not be known")
	}
}

// TestRecvLyingLengthPrefix pins the allocation hardening: a frame
// header claiming MaxFrameSize over a near-empty stream must fail with
// an unexpected-EOF error without allocating anywhere near the claim.
func TestRecvLyingLengthPrefix(t *testing.T) {
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrameSize)
	buf.Write(hdr[:])
	buf.WriteString("tiny")
	c := NewConn(&buf)

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	_, err := c.Recv()
	runtime.ReadMemStats(&after)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("err = %v, want io.ErrUnexpectedEOF", err)
	}
	if grew := after.TotalAlloc - before.TotalAlloc; grew > 1<<20 {
		t.Fatalf("Recv allocated %d bytes for a 4-byte body with a lying %d-byte claim", grew, MaxFrameSize)
	}
}

func TestRecvTruncatedBody(t *testing.T) {
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 100)
	buf.Write(hdr[:])
	buf.WriteString("short")
	c := NewConn(&buf)
	if _, err := c.Recv(); err == nil {
		t.Fatal("Recv of truncated body should error")
	}
}

func TestLargeSnapshotFrame(t *testing.T) {
	a, b := pipePair()
	defer a.Close()
	defer b.Close()
	state := make([]byte, 1<<20) // 1 MiB snapshot
	for i := range state {
		state[i] = byte(i)
	}
	go func() {
		if err := a.SendTyped(MsgSnapshot, SnapshotPayload{JobID: "j", Epoch: 3, State: state}); err != nil {
			t.Error(err)
		}
	}()
	m, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	var p SnapshotPayload
	if err := m.Decode(&p); err != nil {
		t.Fatal(err)
	}
	if len(p.State) != len(state) || p.State[12345] != state[12345] {
		t.Fatal("snapshot corrupted in transit")
	}
}

func TestNewMessageMarshalError(t *testing.T) {
	if _, err := NewMessage(MsgAck, func() {}); err == nil {
		t.Fatal("NewMessage should reject unmarshalable payload")
	}
}

func TestFrameErrorString(t *testing.T) {
	e := &FrameError{Reason: "test", Size: 9}
	if e.Error() == "" {
		t.Fatal("empty error string")
	}
}

// TestRecvNeverPanicsOnGarbage feeds random byte streams to Recv; it
// must always return an error (or a valid message) without panicking.
func TestRecvNeverPanicsOnGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 500; i++ {
		n := rng.Intn(64)
		garbage := make([]byte, n)
		rng.Read(garbage)
		// Cap the claimed frame size so ReadFull fails fast instead of
		// allocating gigabytes.
		if n >= 4 {
			binary.BigEndian.PutUint32(garbage[:4], uint32(rng.Intn(128)))
		}
		c := NewConn(bytes.NewBuffer(garbage))
		for {
			if _, err := c.Recv(); err != nil {
				break
			}
		}
	}
}

// TestCorruptedValidFrame flips bytes inside a well-formed frame; Recv
// must error or produce a typed message, never panic.
func TestCorruptedValidFrame(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(&buf)
	if err := c.SendTyped(MsgAppStat, AppStatPayload{JobID: "j", Epoch: 3, Metric: 0.5}); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		corrupted := append([]byte(nil), frame...)
		pos := 4 + rng.Intn(len(corrupted)-4) // keep the length prefix intact
		corrupted[pos] ^= byte(1 + rng.Intn(255))
		r := NewConn(bytes.NewBuffer(corrupted))
		msg, err := r.Recv()
		if err == nil && msg.Type == "" {
			t.Fatal("corrupted frame produced an untyped message")
		}
	}
}
