package wire

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestTraceContextRoundTrip proves every lifecycle payload carries its
// trace context through a full encode/decode cycle.
func TestTraceContextRoundTrip(t *testing.T) {
	tc := TraceContext{TraceID: "8000000100000001", SpanID: "8000000100000002"}
	payloads := []struct {
		typ  MsgType
		send interface{}
	}{
		{MsgStartJob, StartJobPayload{JobID: "j1", Workload: "cifar10", MaxEpoch: 5, TraceContext: tc}},
		{MsgResumeJob, StartJobPayload{JobID: "j1", Workload: "cifar10", Snapshot: []byte("s"), TraceContext: tc}},
		{MsgDecision, DecisionPayload{JobID: "j1", Decision: "suspend", TraceContext: tc}},
		{MsgSuspendJob, JobControlPayload{JobID: "j1", TraceContext: tc}},
		{MsgTerminateJob, JobControlPayload{JobID: "j1", TraceContext: tc}},
		{MsgIterDone, IterDonePayload{JobID: "j1", Epoch: 3, TraceContext: tc}},
		{MsgJobExited, JobExitedPayload{JobID: "j1", Epoch: 3, Reason: "completed", TraceContext: tc}},
		{MsgSnapshot, SnapshotPayload{JobID: "j1", Epoch: 3, State: []byte("x"), TraceContext: tc}},
	}
	for _, p := range payloads {
		m, err := NewMessage(p.typ, p.send)
		if err != nil {
			t.Fatalf("%s: %v", p.typ, err)
		}
		var got TraceContext
		switch p.typ {
		case MsgStartJob, MsgResumeJob:
			var v StartJobPayload
			if err := m.Decode(&v); err != nil {
				t.Fatal(err)
			}
			got = v.TraceContext
		case MsgDecision:
			var v DecisionPayload
			if err := m.Decode(&v); err != nil {
				t.Fatal(err)
			}
			got = v.TraceContext
		case MsgSuspendJob, MsgTerminateJob:
			var v JobControlPayload
			if err := m.Decode(&v); err != nil {
				t.Fatal(err)
			}
			got = v.TraceContext
		case MsgIterDone:
			var v IterDonePayload
			if err := m.Decode(&v); err != nil {
				t.Fatal(err)
			}
			got = v.TraceContext
		case MsgJobExited:
			var v JobExitedPayload
			if err := m.Decode(&v); err != nil {
				t.Fatal(err)
			}
			got = v.TraceContext
		case MsgSnapshot:
			var v SnapshotPayload
			if err := m.Decode(&v); err != nil {
				t.Fatal(err)
			}
			got = v.TraceContext
		}
		if got != tc {
			t.Errorf("%s: trace context = %+v, want %+v", p.typ, got, tc)
		}
	}
}

// TestTraceContextBackwardCompat proves frames from peers that predate
// tracing decode cleanly: the fields are absent from the JSON and the
// context comes back zero.
func TestTraceContextBackwardCompat(t *testing.T) {
	// A pre-tracing peer encodes only the original fields.
	legacy := []struct {
		raw    string
		decode func([]byte) (TraceContext, error)
	}{
		{`{"jobId":"j1","workload":"cifar10","maxEpoch":5,"seed":1,"statPeriod":1}`,
			func(b []byte) (TraceContext, error) {
				var v StartJobPayload
				err := json.Unmarshal(b, &v)
				return v.TraceContext, err
			}},
		{`{"jobId":"j1","decision":"continue"}`,
			func(b []byte) (TraceContext, error) {
				var v DecisionPayload
				err := json.Unmarshal(b, &v)
				return v.TraceContext, err
			}},
		{`{"jobId":"j1","epoch":2}`,
			func(b []byte) (TraceContext, error) {
				var v IterDonePayload
				err := json.Unmarshal(b, &v)
				return v.TraceContext, err
			}},
		{`{"jobId":"j1","epoch":2,"reason":"completed"}`,
			func(b []byte) (TraceContext, error) {
				var v JobExitedPayload
				err := json.Unmarshal(b, &v)
				return v.TraceContext, err
			}},
		{`{"jobId":"j1","epoch":2,"state":"eA=="}`,
			func(b []byte) (TraceContext, error) {
				var v SnapshotPayload
				err := json.Unmarshal(b, &v)
				return v.TraceContext, err
			}},
	}
	for i, c := range legacy {
		got, err := c.decode([]byte(c.raw))
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got != (TraceContext{}) {
			t.Errorf("case %d: legacy frame decoded trace context %+v", i, got)
		}
	}

	// And the reverse: an untraced sender (zero context) must not emit
	// the fields at all, so older receivers see byte-identical frames.
	m, err := NewMessage(MsgIterDone, IterDonePayload{JobID: "j1", Epoch: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s := string(m.Payload); strings.Contains(s, "traceId") || strings.Contains(s, "spanId") {
		t.Fatalf("zero trace context serialized: %s", s)
	}
}
