package sched

import (
	"errors"
	"sync"
	"testing"

	"github.com/hyperdrive-ml/hyperdrive/internal/param"
)

func newTestJob() *Job {
	return NewJob("j1", param.Config{"lr": 0.01}, 7, 120)
}

func TestNewJobInitialState(t *testing.T) {
	j := newTestJob()
	if j.State() != Pending || j.Epoch() != 0 || j.Machine() != "" {
		t.Fatalf("fresh job state = %v epoch=%d machine=%q", j.State(), j.Epoch(), j.Machine())
	}
}

func TestLegalLifecycle(t *testing.T) {
	j := newTestJob()
	if err := j.Start("m1"); err != nil {
		t.Fatal(err)
	}
	if j.State() != Running || j.Machine() != "m1" {
		t.Fatalf("after start: %v on %q", j.State(), j.Machine())
	}
	if err := j.Suspend(); err != nil {
		t.Fatal(err)
	}
	if j.State() != Suspended || j.Machine() != "" {
		t.Fatalf("after suspend: %v on %q", j.State(), j.Machine())
	}
	if err := j.Start("m2"); err != nil {
		t.Fatal(err)
	}
	if j.Machine() != "m2" {
		t.Fatalf("resume machine = %q, want m2", j.Machine())
	}
	if err := j.Complete(); err != nil {
		t.Fatal(err)
	}
	if j.State() != Completed {
		t.Fatalf("after complete: %v", j.State())
	}
}

func TestIllegalTransitions(t *testing.T) {
	j := newTestJob()
	var te *TransitionError
	if err := j.Suspend(); !errors.As(err, &te) {
		t.Fatalf("suspend pending: err = %v, want TransitionError", err)
	}
	if err := j.Complete(); !errors.As(err, &te) {
		t.Fatalf("complete pending: err = %v, want TransitionError", err)
	}
	if err := j.Terminate(); err != nil {
		t.Fatal(err)
	}
	if err := j.Terminate(); !errors.As(err, &te) {
		t.Fatal("double terminate should fail")
	}
	if err := j.Start("m"); !errors.As(err, &te) {
		t.Fatal("start after terminate should fail")
	}
	if te.Error() == "" {
		t.Fatal("empty TransitionError message")
	}
}

func TestTerminateFromSuspended(t *testing.T) {
	j := newTestJob()
	if err := j.Start("m"); err != nil {
		t.Fatal(err)
	}
	if err := j.Suspend(); err != nil {
		t.Fatal(err)
	}
	if err := j.Terminate(); err != nil {
		t.Fatal(err)
	}
}

func TestSetEpochMonotone(t *testing.T) {
	j := newTestJob()
	j.SetEpoch(5)
	j.SetEpoch(3) // stale report must not regress
	if j.Epoch() != 5 {
		t.Fatalf("epoch = %d, want 5", j.Epoch())
	}
}

func TestPriority(t *testing.T) {
	j := newTestJob()
	j.SetPriority(0.8)
	if j.Priority() != 0.8 {
		t.Fatalf("priority = %v", j.Priority())
	}
}

func TestStateStrings(t *testing.T) {
	tests := []struct {
		give State
		want string
	}{
		{Pending, "pending"}, {Running, "running"}, {Suspended, "suspended"},
		{Terminated, "terminated"}, {Completed, "completed"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("%v.String() = %q", tt.give, got)
		}
	}
	if State(42).String() == "" {
		t.Error("unknown state should render")
	}
}

func TestTerminalStates(t *testing.T) {
	if Pending.Terminal() || Running.Terminal() || Suspended.Terminal() {
		t.Fatal("non-terminal state reported terminal")
	}
	if !Terminated.Terminal() || !Completed.Terminal() {
		t.Fatal("terminal state not reported terminal")
	}
}

func TestDecisionStrings(t *testing.T) {
	if Continue.String() != "continue" || Suspend.String() != "suspend" || Terminate.String() != "terminate" {
		t.Fatal("bad decision strings")
	}
	if Decision(9).String() == "" {
		t.Fatal("unknown decision should render")
	}
}

func TestJobConcurrentAccess(t *testing.T) {
	j := newTestJob()
	if err := j.Start("m"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(2)
		e := i
		go func() { defer wg.Done(); j.SetEpoch(e) }()
		go func() { defer wg.Done(); _ = j.Epoch(); _ = j.State() }()
	}
	wg.Wait()
	if j.Epoch() != 49 {
		t.Fatalf("epoch = %d, want 49", j.Epoch())
	}
}
