// Package sched defines the scheduling vocabulary shared by the live
// HyperDrive runtime (internal/cluster), the discrete-event simulator
// (internal/sim), and the scheduling policies (internal/policy): job
// identities and state machines, machine slots, SAP up-call events, and
// the continue/suspend/terminate decisions of the paper's
// OnIterationFinish interface (§4.2).
package sched

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hyperdrive-ml/hyperdrive/internal/obs"
	"github.com/hyperdrive-ml/hyperdrive/internal/param"
)

// JobID identifies one hyperparameter configuration's training job.
type JobID string

// MachineID identifies one slot (machine/GPU) in the cluster.
type MachineID string

// State is a job's lifecycle state.
type State int

// Job states. Transitions: Pending -> Running; Running -> {Suspended,
// Terminated, Completed}; Suspended -> {Running, Terminated}.
const (
	Pending State = iota + 1
	Running
	Suspended
	Terminated
	Completed
)

// String returns the lowercase state name.
func (s State) String() string {
	switch s {
	case Pending:
		return "pending"
	case Running:
		return "running"
	case Suspended:
		return "suspended"
	case Terminated:
		return "terminated"
	case Completed:
		return "completed"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Terminal reports whether no further transitions are possible.
func (s State) Terminal() bool { return s == Terminated || s == Completed }

// TransitionError reports an illegal job state transition.
type TransitionError struct {
	Job  JobID
	From State
	To   State
}

func (e *TransitionError) Error() string {
	return fmt.Sprintf("sched: job %s: illegal transition %v -> %v", e.Job, e.From, e.To)
}

// Job is one configuration's training job. All methods are safe for
// concurrent use. State, epoch, and priority reads are lock-free
// atomic loads — they sit on the scheduler's decision hot path (every
// GetIdleJob scan reads all three for every idle job) — while the
// transition methods serialize on a mutex so check-then-set stays
// race-free.
type Job struct {
	ID       JobID
	Config   param.Config
	Seed     int64
	MaxEpoch int

	mu       sync.Mutex    // serializes transitions; guards machine
	machine  MachineID     // guarded by mu
	state    atomic.Int32  // State; written only under mu
	epoch    atomic.Int32  // monotonic, advanced by CAS
	priority atomic.Uint64 // math.Float64bits
}

// NewJob creates a pending job.
func NewJob(id JobID, cfg param.Config, seed int64, maxEpoch int) *Job {
	j := &Job{ID: id, Config: cfg, Seed: seed, MaxEpoch: maxEpoch}
	j.state.Store(int32(Pending))
	return j
}

// State returns the current lifecycle state.
func (j *Job) State() State {
	return State(j.state.Load())
}

// Epoch returns the number of completed epochs.
func (j *Job) Epoch() int {
	return int(j.epoch.Load())
}

// SetEpoch records training progress; the epoch only moves forward.
func (j *Job) SetEpoch(e int) {
	for {
		cur := j.epoch.Load()
		if int32(e) <= cur || j.epoch.CompareAndSwap(cur, int32(e)) {
			return
		}
	}
}

// Machine returns the machine the job is (or was last) placed on.
func (j *Job) Machine() MachineID {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.machine
}

// Priority returns the job's SAP-assigned priority (paper §4.2
// labelJob); higher runs earlier in the idle queue.
func (j *Job) Priority() float64 {
	return math.Float64frombits(j.priority.Load())
}

// SetPriority implements labelJob.
func (j *Job) SetPriority(p float64) {
	j.priority.Store(math.Float64bits(p))
}

// Start transitions Pending/Suspended -> Running on the given machine.
func (j *Job) Start(m MachineID) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := j.State()
	if st != Pending && st != Suspended {
		return &TransitionError{Job: j.ID, From: st, To: Running}
	}
	j.state.Store(int32(Running))
	j.machine = m
	return nil
}

// Suspend transitions Running -> Suspended.
func (j *Job) Suspend() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if st := j.State(); st != Running {
		return &TransitionError{Job: j.ID, From: st, To: Suspended}
	}
	j.state.Store(int32(Suspended))
	j.machine = ""
	return nil
}

// Terminate transitions Running/Suspended/Pending -> Terminated.
func (j *Job) Terminate() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if st := j.State(); st.Terminal() {
		return &TransitionError{Job: j.ID, From: st, To: Terminated}
	}
	j.state.Store(int32(Terminated))
	j.machine = ""
	return nil
}

// Complete transitions Running -> Completed (epoch budget exhausted).
func (j *Job) Complete() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if st := j.State(); st != Running {
		return &TransitionError{Job: j.ID, From: st, To: Completed}
	}
	j.state.Store(int32(Completed))
	j.machine = ""
	return nil
}

// Event is the payload of the SAP up-calls ApplicationStat and
// OnIterationFinish (§4.2): one job's newly reported statistic.
type Event struct {
	Job      JobID
	Epoch    int
	Metric   float64
	Duration time.Duration // duration of the epoch that just finished
	Time     time.Time     // experiment-clock timestamp
	// Span, when non-nil, is the decision trace the engine opened for
	// this up-call; policies annotate it with the inputs behind their
	// verdict (estimate, classification, allocation). Nil span methods
	// are no-ops, so policies annotate unconditionally.
	Span *obs.Span
}

// Decision is the SAP's verdict at an iteration boundary.
type Decision int

// Decisions.
const (
	Continue Decision = iota + 1
	Suspend
	Terminate
)

// String returns the lowercase decision name.
func (d Decision) String() string {
	switch d {
	case Continue:
		return "continue"
	case Suspend:
		return "suspend"
	case Terminate:
		return "terminate"
	default:
		return fmt.Sprintf("decision(%d)", int(d))
	}
}
