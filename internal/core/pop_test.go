package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// stepProb builds a ProbFunc that is 0 before epoch e0 and rises
// linearly to pmax at epoch e1.
func rampProb(e0, e1 int, pmax float64) ProbFunc {
	return func(m int) float64 {
		switch {
		case m <= e0:
			return 0
		case m >= e1:
			return pmax
		default:
			return pmax * float64(m-e0) / float64(e1-e0)
		}
	}
}

func TestClassString(t *testing.T) {
	if Promising.String() != "promising" || Opportunistic.String() != "opportunistic" ||
		Poor.String() != "poor" || Class(0).String() != "unknown" {
		t.Fatal("bad Class strings")
	}
}

func TestEstimateERTBasic(t *testing.T) {
	// Certain arrival exactly 10 epochs from now.
	prob := func(m int) float64 {
		if m >= 30 {
			return 1
		}
		return 0
	}
	est := EstimateERT("j", prob, 20, 120, time.Minute, 10*time.Hour)
	if !almost(est.Confidence, 1, 1e-9) {
		t.Fatalf("confidence = %v, want 1", est.Confidence)
	}
	if !almost(est.ExpectedRemainingEpochs, 10, 1e-9) {
		t.Fatalf("expected epochs = %v, want 10", est.ExpectedRemainingEpochs)
	}
	if est.ERT != 10*time.Minute {
		t.Fatalf("ERT = %v, want 10m", est.ERT)
	}
	if est.Truncated || !est.Satisfying() {
		t.Fatal("certain 10-minute arrival should be satisfying")
	}
}

func TestEstimateERTUniformPMF(t *testing.T) {
	// P rises linearly 0 -> 1 over epochs 0..100: uniform pmf, so the
	// expected arrival is ~50 epochs out.
	est := EstimateERT("j", rampProb(0, 100, 1), 0, 120, time.Minute, 10*time.Hour)
	if est.Confidence < 0.99 {
		t.Fatalf("confidence = %v, want ~1", est.Confidence)
	}
	if est.ExpectedRemainingEpochs < 45 || est.ExpectedRemainingEpochs > 55 {
		t.Fatalf("expected epochs = %v, want ~50", est.ExpectedRemainingEpochs)
	}
}

func TestEstimateERTBudgetCapsPMFSum(t *testing.T) {
	// With only 20 epochs of budget on a curve whose arrival is
	// uniform over 100 epochs, the pmf is summed to M = 20 only, so
	// the confidence is the partial mass ~0.2 (the paper's "may not
	// sum up to 100%" case) and the ERT stays within the budget.
	remaining := 20 * time.Minute
	est := EstimateERT("j", rampProb(0, 100, 1), 0, 120, time.Minute, remaining)
	if est.Confidence < 0.15 || est.Confidence > 0.25 {
		t.Fatalf("confidence = %v, want ~0.2 partial mass", est.Confidence)
	}
	if est.ERT > remaining {
		t.Fatalf("ERT = %v exceeds remaining budget %v", est.ERT, remaining)
	}
}

func TestEstimateERTLateMassStaysWithinBudget(t *testing.T) {
	// All arrival mass sits at the very end of the summable horizon:
	// because M = (Tmax - Tpass) / Epoch_i caps the summation, the
	// expected remaining time can never exceed the budget (the
	// paper's "stop summing further" rule is the degenerate-input
	// safety net, exercised in TestEstimateERTDegenerateInputs).
	prob := func(m int) float64 {
		if m >= 20 {
			return 1
		}
		if m >= 18 {
			return 0.9
		}
		return 0
	}
	remaining := 20 * time.Minute
	est := EstimateERT("j", prob, 0, 120, time.Minute, remaining)
	if est.ERT > remaining {
		t.Fatalf("ERT = %v exceeds the remaining budget %v", est.ERT, remaining)
	}
	if est.Confidence < 0.95 {
		t.Fatalf("confidence = %v, want ~1 (all mass within horizon)", est.Confidence)
	}
	if !est.Satisfying() {
		t.Fatal("late but in-budget arrival should satisfy")
	}
}

func TestEstimateERTZeroMass(t *testing.T) {
	est := EstimateERT("j", func(int) float64 { return 0 }, 10, 120, time.Minute, time.Hour)
	if est.Confidence != 0 || !est.Truncated || est.ERT != time.Hour {
		t.Fatalf("zero-mass estimate = %+v", est)
	}
}

func TestEstimateERTDegenerateInputs(t *testing.T) {
	prob := rampProb(0, 10, 1)
	if est := EstimateERT("j", prob, 120, 120, time.Minute, time.Hour); !est.Truncated {
		t.Fatal("job at max epoch should be truncated")
	}
	if est := EstimateERT("j", prob, 0, 120, 0, time.Hour); !est.Truncated {
		t.Fatal("zero epoch duration should be truncated")
	}
	if est := EstimateERT("j", prob, 0, 120, time.Minute, 0); !est.Truncated {
		t.Fatal("zero remaining budget should be truncated")
	}
	if est := EstimateERT("j", prob, 0, 120, time.Hour, time.Minute); !est.Truncated {
		t.Fatal("budget shorter than one epoch should be truncated")
	}
}

func TestEstimateERTClampsDecreasingPosterior(t *testing.T) {
	// A noisy posterior that dips must not produce negative pmf mass.
	prob := func(m int) float64 {
		base := math.Min(float64(m)/50, 0.9)
		if m%7 == 0 {
			base -= 0.1
		}
		return math.Max(base, 0)
	}
	est := EstimateERT("j", prob, 0, 120, time.Minute, 5*time.Hour)
	if est.Confidence < 0 || est.Confidence > 1 {
		t.Fatalf("confidence %v out of [0,1]", est.Confidence)
	}
	if est.ExpectedRemainingEpochs < 0 {
		t.Fatalf("negative expected epochs %v", est.ExpectedRemainingEpochs)
	}
}

// TestEstimateERTProperties checks the §3.1.1 invariants over random
// monotone posteriors: confidence in [0, 1], ERT <= remaining budget.
func TestEstimateERTProperties(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Random monotone posterior via cumulative uniform steps.
		steps := make([]float64, 150)
		var total float64
		for i := range steps {
			steps[i] = rng.Float64()
			total += steps[i]
		}
		scale := rng.Float64() / math.Max(total, 1e-9)
		cum := make([]float64, len(steps)+1)
		for i, s := range steps {
			cum[i+1] = cum[i] + s*scale
		}
		prob := func(m int) float64 {
			if m < 0 {
				return 0
			}
			if m >= len(cum) {
				return cum[len(cum)-1]
			}
			return cum[m]
		}
		curEpoch := rng.Intn(100)
		epochDur := time.Duration(1+rng.Intn(120)) * time.Second
		remaining := time.Duration(1+rng.Intn(600)) * time.Minute
		est := EstimateERT("j", prob, curEpoch, 120, epochDur, remaining)
		if est.Confidence < 0 || est.Confidence > 1 {
			return false
		}
		if est.ERT > remaining {
			return false
		}
		if est.ExpectedRemainingEpochs < 0 {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestEstimateERTBatchMatchesFunc pins the batch path's equivalence
// contract: given a batch source that agrees pointwise with a
// ProbFunc, EstimateERTBatch returns a field-for-field identical
// estimate, across random posteriors, horizons, and budgets
// (including truncated and zero-mass cases).
func TestEstimateERTBatchMatchesFunc(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pmax := rng.Float64()
		e0 := rng.Intn(80)
		e1 := e0 + 1 + rng.Intn(60)
		prob := rampProb(e0, e1, pmax)
		batch := func(from, to int) []float64 {
			out := make([]float64, 0, to-from+1)
			for m := from; m <= to; m++ {
				out = append(out, prob(m))
			}
			return out
		}
		curEpoch := rng.Intn(130) // occasionally past maxEpoch: degenerate guard path
		epochDur := time.Duration(rng.Intn(121)) * time.Second
		remaining := time.Duration(rng.Intn(601)) * time.Minute
		a := EstimateERT("j", prob, curEpoch, 120, epochDur, remaining)
		b := EstimateERTBatch("j", batch, curEpoch, 120, epochDur, remaining)
		return a == b
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestEstimateERTBatchShortSource pins the defensive path: a source
// returning fewer values than requested yields a truncated estimate
// instead of a panic.
func TestEstimateERTBatchShortSource(t *testing.T) {
	short := func(from, to int) []float64 { return make([]float64, 2) }
	est := EstimateERTBatch("j", short, 10, 120, time.Minute, time.Hour)
	if !est.Truncated || est.ERT != time.Hour {
		t.Fatalf("short batch source: got %+v, want truncated with ERT = remaining", est)
	}
}

func mkEst(id string, conf float64, ert time.Duration, truncated bool) Estimate {
	return Estimate{JobID: id, Confidence: conf, ERT: ert, Truncated: truncated}
}

func TestAllocateSlotsEmptyAndZero(t *testing.T) {
	a := AllocateSlots(nil, 4, 1)
	if a.PromisingSlots != 0 || len(a.Promising) != 0 {
		t.Fatalf("empty allocation = %+v", a)
	}
	ests := []Estimate{mkEst("a", 0.9, time.Hour, false)}
	a = AllocateSlots(ests, 0, 1)
	if a.PromisingSlots != 0 || len(a.Opportunistic) != 1 {
		t.Fatalf("zero-slot allocation = %+v", a)
	}
}

func TestAllocateSlotsAllLowConfidence(t *testing.T) {
	// Early experiment: confidences near zero => everything
	// opportunistic (Figure 4a).
	ests := []Estimate{
		mkEst("a", 0.02, time.Hour, false),
		mkEst("b", 0.03, time.Hour, false),
		mkEst("c", 0, time.Hour, true),
	}
	a := AllocateSlots(ests, 8, 1)
	if a.PromisingSlots != 0 {
		t.Fatalf("promising slots = %d, want 0 at low confidence", a.PromisingSlots)
	}
	if len(a.Opportunistic) != 3 {
		t.Fatalf("opportunistic = %d, want all 3", len(a.Opportunistic))
	}
}

func TestAllocateSlotsHighConfidence(t *testing.T) {
	// Late experiment: a few confident winners get dedicated slots
	// (Figure 4b).
	ests := []Estimate{
		mkEst("a", 0.95, 30*time.Minute, false),
		mkEst("b", 0.90, 40*time.Minute, false),
		mkEst("c", 0.10, time.Hour, false),
		mkEst("d", 0, time.Hour, true),
	}
	a := AllocateSlots(ests, 4, 1)
	if a.PromisingSlots < 1 || a.PromisingSlots > 4 {
		t.Fatalf("promising slots = %d", a.PromisingSlots)
	}
	if len(a.Promising) == 0 {
		t.Fatal("no promising jobs at high confidence")
	}
	if a.Promising[0].JobID != "a" {
		t.Fatalf("priority order wrong: first = %s, want a", a.Promising[0].JobID)
	}
	if a.Threshold < 0.5 {
		t.Fatalf("threshold = %v, want high", a.Threshold)
	}
}

func TestAllocateSlotsDeservedBound(t *testing.T) {
	// Many confident jobs but few slots: deserved = S*p caps the pool.
	var ests []Estimate
	for i := 0; i < 20; i++ {
		ests = append(ests, mkEst(string(rune('a'+i)), 0.5, time.Hour, false))
	}
	a := AllocateSlots(ests, 4, 1)
	// Deserved at p=0.5 is 2; desired is 20. Effective = 2.
	if a.PromisingSlots != 2 {
		t.Fatalf("promising slots = %d, want 2 (S*p = 4*0.5)", a.PromisingSlots)
	}
}

func TestAllocateSlotsDesiredBound(t *testing.T) {
	// One very confident job on a big cluster: desired = k caps it.
	ests := []Estimate{
		mkEst("a", 0.99, time.Minute, false),
		mkEst("b", 0.01, time.Hour, false),
	}
	a := AllocateSlots(ests, 16, 1)
	if a.PromisingSlots != 1 {
		t.Fatalf("promising slots = %d, want 1 (desired bound)", a.PromisingSlots)
	}
	if len(a.Promising) != 1 || a.Promising[0].JobID != "a" {
		t.Fatalf("promising set = %+v", a.Promising)
	}
}

func TestAllocateSlotsPerJobSlots(t *testing.T) {
	ests := []Estimate{
		mkEst("a", 0.9, time.Minute, false),
		mkEst("b", 0.8, time.Minute, false),
	}
	a := AllocateSlots(ests, 16, 4) // k = 4 slots per promising job
	if a.PromisingSlots != 8 {
		t.Fatalf("promising slots = %d, want 8 (2 jobs x k=4, deserved 16*0.8=12.8)", a.PromisingSlots)
	}
}

func TestAllocateSlotsTruncatedNeverPromising(t *testing.T) {
	ests := []Estimate{
		mkEst("a", 0.9, time.Hour, true), // truncated: not satisfying
		mkEst("b", 0.8, time.Minute, false),
	}
	a := AllocateSlots(ests, 8, 1)
	for _, e := range a.Promising {
		if e.JobID == "a" {
			t.Fatal("truncated estimate classified promising")
		}
	}
}

// TestDesiredDeservedMonotone checks the §3.2 observation: S_desired
// is monotone non-increasing in p and S_deserved is monotone
// increasing.
func TestDesiredDeservedMonotone(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		ests := make([]Estimate, n)
		for i := range ests {
			ests[i] = mkEst(string(rune('a'+i%26)), rng.Float64(), time.Duration(rng.Intn(3600))*time.Second, rng.Intn(4) == 0)
		}
		curve := DesiredDeservedCurve(ests, 1+rng.Intn(32), 1, 50)
		for i := 1; i < len(curve); i++ {
			if curve[i].Desired > curve[i-1].Desired+1e-9 {
				return false
			}
			if curve[i].Deserved < curve[i-1].Deserved-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDesiredDeservedCurveEndpoints(t *testing.T) {
	ests := []Estimate{mkEst("a", 0.6, time.Minute, false)}
	curve := DesiredDeservedCurve(ests, 10, 1, 11)
	if curve[0].P != 0 || curve[len(curve)-1].P != 1 {
		t.Fatalf("grid endpoints wrong: %v .. %v", curve[0].P, curve[len(curve)-1].P)
	}
	if curve[0].Deserved != 0 || curve[len(curve)-1].Deserved != 10 {
		t.Fatalf("deserved endpoints = %v, %v", curve[0].Deserved, curve[len(curve)-1].Deserved)
	}
}

// TestAllocationMaximizesEffective cross-checks the argmax against a
// brute-force sweep of the candidate thresholds.
func TestAllocationMaximizesEffective(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		ests := make([]Estimate, n)
		for i := range ests {
			ests[i] = mkEst(string(rune('a'+i%26)), float64(rng.Intn(100))/100, time.Minute, rng.Intn(5) == 0)
		}
		slots := 1 + rng.Intn(16)
		a := AllocateSlots(ests, slots, 1)
		best := 0.0
		for _, e := range ests {
			p := e.Confidence
			if p <= 0 {
				continue
			}
			eff := math.Min(float64(nSatisfying(ests, p)), float64(slots)*p)
			if eff > best {
				best = eff
			}
		}
		return a.PromisingSlots == int(math.Min(best+1e-9, float64(slots)))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestShouldKill(t *testing.T) {
	// Not enough history yet: grace period.
	if d := ShouldKill([]float64{0.1, 0.1}, 0.15, 5); d.Kill {
		t.Fatal("killed during grace period")
	}
	// Stuck at random accuracy past the grace period.
	hist := []float64{0.10, 0.11, 0.09, 0.12, 0.10, 0.11}
	if d := ShouldKill(hist, 0.15, 5); !d.Kill {
		t.Fatal("non-learner not killed")
	}
	// Escaped the threshold at least once: keep.
	hist = append(hist, 0.2)
	if d := ShouldKill(hist, 0.15, 5); d.Kill {
		t.Fatal("learning job killed")
	}
}

func TestShouldKillRL(t *testing.T) {
	hist := []float64{-180, -150, -130, -160, -140}
	if d := ShouldKill(hist, -100, 3); !d.Kill {
		t.Fatal("RL non-learner not killed at -100 threshold")
	}
	hist = []float64{-180, -90, -60}
	if d := ShouldKill(hist, -100, 3); d.Kill {
		t.Fatal("learning RL job killed")
	}
}

func TestBelowConfidenceFloor(t *testing.T) {
	if !BelowConfidenceFloor(mkEst("a", 0.01, time.Minute, false)) {
		t.Fatal("0.01 should be below the 0.05 floor")
	}
	if BelowConfidenceFloor(mkEst("a", 0.5, time.Minute, false)) {
		t.Fatal("0.5 should clear the floor")
	}
}

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }
