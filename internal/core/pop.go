// Package core implements the mathematical heart of the POP scheduling
// algorithm (paper §3): expected-remaining-time estimation from a
// learning-curve posterior (§3.1.1), prediction confidence, the
// Promising/Opportunistic/Poor classification, and the infused
// desired/deserved slot-allocation rule that dynamically splits cluster
// slots between exploitation and exploration (§3.2).
//
// The package is deliberately independent of how probabilities are
// produced: callers supply P(y(m) >= y_target | history) as a function
// of the absolute epoch m, normally backed by internal/curve.
package core

import (
	"math"
	"sort"
	"time"
)

// Class is a configuration's POP classification.
type Class int

// POP classes.
const (
	Promising Class = iota + 1
	Opportunistic
	Poor
)

// String returns the lowercase class name.
func (c Class) String() string {
	switch c {
	case Promising:
		return "promising"
	case Opportunistic:
		return "opportunistic"
	case Poor:
		return "poor"
	default:
		return "unknown"
	}
}

// ProbFunc returns P(y(m) >= y_target | observed history) for an
// absolute epoch m (1-based). Implementations should be monotone
// non-decreasing in m for learning curves; Estimate clamps violations.
type ProbFunc func(m int) float64

// ProbBatchFunc is the batch counterpart of ProbFunc: it returns
// P(y(m) >= y_target | observed history) for every absolute epoch m
// in [from, to] inclusive (element k corresponds to m = from+k).
// Posterior back-ends use it to evaluate each sample's curve once per
// epoch range instead of once per (epoch, query)
// (curve.Posterior.ProbSweep), turning the up-to-(maxEpoch-curEpoch)
// probability queries of one ERT estimate into a single sweep.
type ProbBatchFunc func(from, to int) []float64

// Estimate is the per-configuration output of §3.1: expected remaining
// epochs and time to reach the target, plus the prediction confidence
// p = sum of the arrival-time pmf within the remaining budget.
type Estimate struct {
	JobID string
	// Confidence is the probability the configuration reaches the
	// target within the remaining experiment time (the pmf sum).
	Confidence float64
	// ExpectedRemainingEpochs is x_i = sum m * p_m.
	ExpectedRemainingEpochs float64
	// ERT is the expected remaining training time (Eq. 3), truncated
	// at the remaining experiment budget.
	ERT time.Duration
	// Truncated reports whether the pmf summation was cut off because
	// the partial ERT exceeded the remaining budget (the paper's
	// "stop summing further" rule); truncated estimates do not count
	// as satisfying.
	Truncated bool
	// EpochDuration is the measured average epoch duration used for
	// the epochs -> time conversion.
	EpochDuration time.Duration
	// BandLow / BandHigh bound the posterior's credible interval for
	// the normalized metric at the prediction horizon (zero when the
	// estimate was made without a posterior). The search-quality audit
	// joins them against realized outcomes to measure band coverage.
	BandLow  float64
	BandHigh float64
}

// Satisfying reports whether the configuration is expected to reach
// the target within the remaining budget: N_satisfying(p) counts
// estimates with Satisfying() and Confidence >= p.
func (e Estimate) Satisfying() bool { return !e.Truncated && e.Confidence > 0 }

// EstimateERT computes the §3.1.1 estimate for one configuration.
//
//   - prob: the learning-curve posterior P(y(m) >= y_target) by
//     absolute epoch.
//   - curEpoch: epochs completed so far.
//   - maxEpoch: the job's epoch budget (prediction horizon).
//   - epochDur: measured average epoch duration (must be positive).
//   - remaining: Tmax - Tpass, the experiment time still available.
//
// The pmf over the arrival epoch is p_m = P(cur+m) - P(cur+m-1),
// clamped at zero (posterior noise can produce tiny decreases). The
// summation stops early once the accumulated expected time exceeds the
// remaining budget, in which case ERT = remaining and the estimate is
// marked truncated.
func EstimateERT(jobID string, prob ProbFunc, curEpoch, maxEpoch int, epochDur, remaining time.Duration) Estimate {
	est, m, ok := estimateHorizon(jobID, curEpoch, maxEpoch, epochDur, remaining)
	if !ok {
		return est
	}

	prev := prob(curEpoch)
	var conf, expEpochs float64
	for k := 1; k <= m; k++ {
		cur := prob(curEpoch + k)
		pk := cur - prev
		if pk < 0 {
			pk = 0
		} else {
			prev = cur
		}
		conf += pk
		expEpochs += float64(k) * pk
		if time.Duration(expEpochs*float64(epochDur)) > remaining {
			est.Confidence = clampProb(conf)
			est.ExpectedRemainingEpochs = expEpochs
			est.ERT = remaining
			est.Truncated = true
			return est
		}
	}
	est.Confidence = clampProb(conf)
	est.ExpectedRemainingEpochs = expEpochs
	if conf <= 1e-12 {
		// No mass within the horizon: the expected time is beyond the
		// budget by definition.
		est.ERT = remaining
		est.Truncated = true
		return est
	}
	est.ERT = time.Duration(expEpochs * float64(epochDur))
	if est.ERT > remaining {
		est.ERT = remaining
		est.Truncated = true
	}
	return est
}

// EstimateERTBatch is EstimateERT over a batch probability source: the
// whole P(curEpoch .. curEpoch+M) range is requested in one call and
// fed through the identical §3.1.1 summation, so the result is
// bit-equal to the per-epoch path whenever the batch source agrees
// pointwise with its ProbFunc counterpart. One boundary estimate then
// costs one posterior sweep instead of up to maxEpoch-curEpoch
// independent posterior passes.
func EstimateERTBatch(jobID string, prob ProbBatchFunc, curEpoch, maxEpoch int, epochDur, remaining time.Duration) Estimate {
	est, m, ok := estimateHorizon(jobID, curEpoch, maxEpoch, epochDur, remaining)
	if !ok {
		return est
	}
	probs := prob(curEpoch, curEpoch+m)
	if len(probs) < m+1 {
		// A misbehaving source cannot support an estimate; treat it
		// like an exhausted budget rather than indexing out of range.
		est.ERT = remaining
		est.Truncated = true
		return est
	}
	return EstimateERT(jobID, func(e int) float64 { return probs[e-curEpoch] }, curEpoch, maxEpoch, epochDur, remaining)
}

// estimateHorizon applies EstimateERT's degenerate-input guards and
// computes M_i = (Tmax - Tpass) / Epoch_i capped by the job's epoch
// budget. ok is false when the returned estimate is already final.
func estimateHorizon(jobID string, curEpoch, maxEpoch int, epochDur, remaining time.Duration) (est Estimate, m int, ok bool) {
	est = Estimate{JobID: jobID, EpochDuration: epochDur}
	if epochDur <= 0 || remaining <= 0 || curEpoch >= maxEpoch {
		est.ERT = remaining
		est.Truncated = true
		return est, 0, false
	}
	m = int(float64(remaining) / float64(epochDur))
	if rem := maxEpoch - curEpoch; m > rem {
		m = rem
	}
	if m < 1 {
		est.ERT = remaining
		est.Truncated = true
		return est, 0, false
	}
	return est, m, true
}

// Allocation is the outcome of the §3.2 infused classification &
// scheduling rule.
type Allocation struct {
	// Threshold is the dynamically chosen confidence threshold
	// p_thred: configurations with Confidence >= Threshold are
	// promising.
	Threshold float64
	// PromisingSlots is S_promising = max_p min(S_desired, S_deserved).
	PromisingSlots int
	// Promising lists promising estimates, highest confidence first
	// (the priority order used to label jobs).
	Promising []Estimate
	// Opportunistic lists the rest, FIFO by input order.
	Opportunistic []Estimate
}

// AllocateSlots runs the desired/deserved optimization over all active
// configurations. totalSlots is S (machines/GPUs); slotsPerJob is k,
// the dedicated slots each promising configuration receives (1 for
// sequential training).
//
// Candidate thresholds are the distinct observed confidences (the
// "tail distribution across all currently active jobs' p values" of
// §5.3). When every confidence is zero the allocation is fully
// opportunistic, matching the early-experiment behaviour of Figure 4a.
func AllocateSlots(ests []Estimate, totalSlots, slotsPerJob int) Allocation {
	if slotsPerJob < 1 {
		slotsPerJob = 1
	}
	alloc := Allocation{}
	if totalSlots <= 0 || len(ests) == 0 {
		alloc.Opportunistic = append(alloc.Opportunistic, ests...)
		return alloc
	}

	// Distinct candidate confidence levels, descending.
	cands := make([]float64, 0, len(ests))
	for _, e := range ests {
		if e.Confidence > 0 {
			cands = append(cands, e.Confidence)
		}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(cands)))

	bestEff := 0.0
	bestP := 0.0
	for _, p := range cands {
		desired := float64(nSatisfying(ests, p) * slotsPerJob)
		deserved := float64(totalSlots) * p
		eff := math.Min(desired, deserved)
		// Prefer higher thresholds on ties: equally effective slots
		// concentrated on higher-confidence jobs.
		if eff > bestEff+1e-12 {
			bestEff = eff
			bestP = p
		}
	}
	alloc.Threshold = bestP
	alloc.PromisingSlots = int(bestEff + 1e-9)
	if alloc.PromisingSlots > totalSlots {
		alloc.PromisingSlots = totalSlots
	}

	if alloc.PromisingSlots == 0 {
		alloc.Opportunistic = append(alloc.Opportunistic, ests...)
		return alloc
	}
	for _, e := range ests {
		if e.Confidence >= alloc.Threshold && e.Satisfying() {
			alloc.Promising = append(alloc.Promising, e)
		} else {
			alloc.Opportunistic = append(alloc.Opportunistic, e)
		}
	}
	sort.SliceStable(alloc.Promising, func(i, j int) bool {
		//hdlint:ignore floateq exact-confidence ties fall through to ERT order; both branches are consistent, so the sort stays strict-weak either way
		if alloc.Promising[i].Confidence != alloc.Promising[j].Confidence {
			return alloc.Promising[i].Confidence > alloc.Promising[j].Confidence
		}
		return alloc.Promising[i].ERT < alloc.Promising[j].ERT
	})
	return alloc
}

// nSatisfying counts configurations expected to reach the target
// within the remaining time with confidence at least p.
func nSatisfying(ests []Estimate, p float64) int {
	n := 0
	for _, e := range ests {
		if e.Satisfying() && e.Confidence >= p {
			n++
		}
	}
	return n
}

// CurvePoint is one point of the Figure 4a/4b desired/deserved curves.
type CurvePoint struct {
	P        float64
	Desired  float64
	Deserved float64
}

// DesiredDeservedCurve evaluates S_desired(p) and S_deserved(p) on a
// uniform grid over [0, 1]; used to regenerate Figures 4a and 4b.
func DesiredDeservedCurve(ests []Estimate, totalSlots, slotsPerJob, points int) []CurvePoint {
	if points < 2 {
		points = 2
	}
	if slotsPerJob < 1 {
		slotsPerJob = 1
	}
	out := make([]CurvePoint, points)
	for i := 0; i < points; i++ {
		p := float64(i) / float64(points-1)
		out[i] = CurvePoint{
			P:        p,
			Desired:  float64(nSatisfying(ests, p) * slotsPerJob),
			Deserved: float64(totalSlots) * p,
		}
	}
	return out
}

// KillDecision captures the two §5.3 pruning rules applied before any
// prediction work.
type KillDecision struct {
	Kill   bool
	Reason string
}

// ShouldKill applies domain-knowledge pruning: after graceEpochs, a
// job whose best metric so far has not cleared killThreshold is not
// learning and is terminated (15% for CIFAR-10, -100 for LunarLander).
func ShouldKill(history []float64, killThreshold float64, graceEpochs int) KillDecision {
	if len(history) < graceEpochs {
		return KillDecision{}
	}
	best := math.Inf(-1)
	for _, v := range history {
		if v > best {
			best = v
		}
	}
	if best <= killThreshold {
		return KillDecision{Kill: true, Reason: "below kill threshold"}
	}
	return KillDecision{}
}

// ConfidenceFloor is the §5.3 lower bound: jobs whose confidence of
// reaching the target drops below it are terminated.
const ConfidenceFloor = 0.05

// BelowConfidenceFloor reports whether an estimate should be pruned as
// unlikely to achieve the target.
func BelowConfidenceFloor(e Estimate) bool {
	return e.Confidence < ConfidenceFloor
}

func clampProb(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}
