GO ?= go

.PHONY: build test lint check fuzz-smoke bench-obs bench-fit bench-trace bench-quality bench-sched bench-serve bench-fleet trace-demo report-demo

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lint: the domain analyzers (determinism, metric names, lock safety,
# error handling, float equality). See DESIGN.md "Static analysis".
lint:
	$(GO) run ./cmd/hdlint ./...

# check: vet + hdlint + full test suite under the race detector.
check:
	sh scripts/check.sh

# fuzz-smoke: run each native fuzz target briefly against its checked-in
# seed corpus plus fresh mutations. Crashers land in testdata/fuzz/ —
# check them in as regression inputs. See DESIGN.md "Whole-program
# analysis & fuzzing".
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzDecode$$' -fuzztime $(FUZZTIME) ./internal/wire
	$(GO) test -run '^$$' -fuzz '^FuzzCheckpointDecode$$' -fuzztime $(FUZZTIME) ./internal/checkpoint
	$(GO) test -run '^$$' -fuzz '^FuzzReadQualityLog$$' -fuzztime $(FUZZTIME) ./internal/obs
	$(GO) test -run '^$$' -fuzz '^FuzzValidateTraceEvents$$' -fuzztime $(FUZZTIME) ./internal/obs

# bench-obs: measure obs-registry overhead on the simulator hot path
# and refresh the committed baseline.
bench-obs:
	$(GO) run ./cmd/hdbench -obs-bench BENCH_obs.json

# bench-fit: measure serial-vs-parallel MCMC fit latency and the
# batch-sweep speedup at the paper's MCMC budget, and refresh the
# committed baseline.
bench-fit:
	$(GO) run ./cmd/hdbench -fit-bench BENCH_fit.json

# bench-trace: measure the tracing stack's overhead (flight recorder +
# Chrome trace export) on the simulator hot path and refresh the
# committed baseline.
bench-trace:
	$(GO) run ./cmd/hdbench -trace-bench BENCH_trace.json

# bench-quality: measure the search-quality audit's overhead on the
# simulator hot path (disabled-path gate < 3%) and refresh the
# committed baseline.
bench-quality:
	$(GO) run ./cmd/hdbench -quality-bench BENCH_quality.json

# bench-sched: measure scheduler-core scale-out at fleet scale (1k
# agents, 16k slots): sharded vs single-lock slot pool under churn
# (speedup gate >= 5x) plus e2e decision latency over real sockets, and
# refresh the committed baseline.
bench-sched:
	$(GO) run ./cmd/hdbench -sched-bench BENCH_sched.json

# bench-serve: measure the multi-tenant service path (hyperdrived):
# submit→first-decision latency over the full HTTP stack and API
# throughput under the per-tenant rate limit (429 + Retry-After gate),
# and refresh the committed baseline.
bench-serve:
	$(GO) run ./cmd/hdbench -serve-bench BENCH_serve.json

# bench-fleet: measure the fleet observability layer's overhead on the
# broker lease hot path (disabled-path gate < 3%) and the instrumented
# API request path, and refresh the committed baseline.
bench-fleet:
	$(GO) run ./cmd/hdbench -fleet-bench BENCH_fleet.json

# report-demo: replay a deterministic simulated POP experiment with the
# quality audit on and render its calibration report into results/.
report-demo:
	$(GO) run ./cmd/hdsim -gen cifar10 -gen-jobs 24 -gen-seed 3 -policies pop \
		-machines 4 -quality-out results/demo_quality.jsonl
	$(GO) run ./cmd/hdreport -o results/sample_quality_report.md results/demo_quality.jsonl

# trace-demo: run a small live experiment with trace export, rebuild a
# second trace from its event log, and validate both — then load
# demo.trace.json in Perfetto (ui.perfetto.dev) to browse it.
trace-demo:
	$(GO) run ./cmd/hyperdrive -policy pop -machines 2 -jobs 6 -speedup 200000 \
		-log demo.jsonl -trace-out demo.trace.json
	$(GO) run ./cmd/hdlog -in demo.jsonl -trace demo.log.trace.json
	$(GO) run ./cmd/hdlog -check-trace demo.trace.json
	$(GO) run ./cmd/hdlog -check-trace demo.log.trace.json
