GO ?= go

.PHONY: build test check bench-obs

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check: vet + full test suite under the race detector.
check:
	sh scripts/check.sh

# bench-obs: measure obs-registry overhead on the simulator hot path
# and refresh the committed baseline.
bench-obs:
	$(GO) run ./cmd/hdbench -obs-bench BENCH_obs.json
