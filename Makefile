GO ?= go

.PHONY: build test lint check bench-obs bench-fit

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lint: the domain analyzers (determinism, metric names, lock safety,
# error handling, float equality). See DESIGN.md "Static analysis".
lint:
	$(GO) run ./cmd/hdlint ./...

# check: vet + hdlint + full test suite under the race detector.
check:
	sh scripts/check.sh

# bench-obs: measure obs-registry overhead on the simulator hot path
# and refresh the committed baseline.
bench-obs:
	$(GO) run ./cmd/hdbench -obs-bench BENCH_obs.json

# bench-fit: measure serial-vs-parallel MCMC fit latency and the
# batch-sweep speedup at the paper's MCMC budget, and refresh the
# committed baseline.
bench-fit:
	$(GO) run ./cmd/hdbench -fit-bench BENCH_fit.json
