#!/bin/sh
# check.sh — the repo's standing health gate: vet, then the domain
# analyzers, then the full test suite with the race detector on.
set -eu

cd "$(dirname "$0")/.."

echo ">> go vet ./..."
go vet ./...

echo ">> hdlint ./..."
go run ./cmd/hdlint ./...

# -short skips the live wall-clock validation runs (fig12a), which
# under the race detector's ~5-10x slowdown exceed the per-package
# test timeout; everything else runs race-enabled in full.
echo ">> go test -race -short ./..."
go test -race -short -timeout 20m ./...

# The chaos e2e (kill + revive an agent mid-experiment) also skips
# under -short, so run it explicitly, race-enabled and bounded.
echo ">> go test -race -run TestChaos ./internal/cluster"
go test -race -run 'TestChaos' -count=1 -timeout 5m ./internal/cluster

# Same for the service-level chaos e2e: two tenants on a shared
# 64-slot pool, one agent killed mid-run, both must still finish.
echo ">> go test -race -run TestMultiTenantChaosE2E ./internal/serve"
go test -race -run 'TestMultiTenantChaosE2E' -count=1 -timeout 5m ./internal/serve

# hyperdrived smoke: boot the multi-tenant server on loopback, submit
# two tenant experiments over HTTP, poll both to completion, and
# exercise the tenant/events/obs surfaces — including the fleet
# observability ones: the /metrics rollup must carry the serve_*
# families (whose names hdlint metricnames pins to internal/obs above)
# and /healthz + /readyz must report a healthy fleet. Exits non-zero on
# any miss.
echo ">> hyperdrived -smoke"
go run ./cmd/hyperdrived -smoke >/dev/null

# Fleet observability overhead smoke: the broker lease hot path with
# telemetry enabled must stay within the (relaxed fast-scale) gate of
# the disabled path, and the instrumented API arm must complete.
echo ">> hdbench -fleet-bench (smoke)"
fleetjson="$(mktemp)"
go run ./cmd/hdbench -fleet-bench "$fleetjson" -fleet-scale fast
rm -f "$fleetjson"

# Smoke the prediction-path benchmark at the reduced MCMC budget: it
# cross-checks serial-vs-parallel posterior determinism and the batch
# estimate's exact equivalence, not just latency.
echo ">> hdbench -fit-bench (smoke)"
fitjson="$(mktemp)"
go run ./cmd/hdbench -fit-bench "$fitjson" -fit-scale fast
rm -f "$fitjson"

# Scheduler-core smoke: the sharded slot pool must beat the
# single-lock baseline under churn (relaxed fast-scale gate) and the
# socket e2e arm must complete; the bench exits non-zero on a miss.
echo ">> hdbench -sched-bench (smoke)"
schedjson="$(mktemp)"
go run ./cmd/hdbench -sched-bench "$schedjson" -sched-scale fast
rm -f "$schedjson"

# Trace-export smoke: a small live run must produce a Chrome trace
# that validates, and the event-log conversion path must produce one
# too.
echo ">> trace export (smoke)"
tracedir="$(mktemp -d)"
go run ./cmd/hyperdrive -policy default -machines 2 -jobs 4 -speedup 200000 \
	-log "$tracedir/run.jsonl" -trace-out "$tracedir/run.trace.json" >/dev/null
go run ./cmd/hdlog -check-trace "$tracedir/run.trace.json"
go run ./cmd/hdlog -in "$tracedir/run.jsonl" -trace "$tracedir/log.trace.json" >/dev/null
go run ./cmd/hdlog -check-trace "$tracedir/log.trace.json"
rm -rf "$tracedir"

# Quality-report smoke: a short deterministic sim run with the audit on
# must yield a log that hdreport renders, with the calibration table in
# the output.
echo ">> hdreport (smoke)"
qualdir="$(mktemp -d)"
go run ./cmd/hdsim -gen cifar10 -gen-jobs 8 -policies pop -machines 2 \
	-quality-out "$qualdir/quality.jsonl" >/dev/null
go run ./cmd/hdreport -o - "$qualdir/quality.jsonl" | grep -q "Prediction calibration"
rm -rf "$qualdir"

# Fuzz smoke: each wire-format decoder gets a short native-fuzz run
# seeded from its checked-in corpus. A crasher fails the gate and lands
# in the package's testdata/fuzz/ directory for checking in.
echo ">> fuzz smoke (10s per target)"
make -s fuzz-smoke FUZZTIME=10s >/dev/null

echo "OK"
