package hyperdrive

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/hyperdrive-ml/hyperdrive/internal/cluster"
	"github.com/hyperdrive-ml/hyperdrive/internal/obs"
)

// tinyPOP builds a POP policy with a minimal MCMC budget for fast
// end-to-end runs.
func tinyPOP(t *testing.T) Policy {
	t.Helper()
	pop, err := NewPOP(POPOptions{Predictor: CurveConfig{
		Walkers: 8, Iters: 30, BurnFrac: 0.5, MaxSamples: 100, StretchA: 2, Seed: 1,
	}})
	if err != nil {
		t.Fatal(err)
	}
	return pop
}

// TestObservabilityEndToEnd runs a short live experiment with a
// registry attached and checks the full telemetry chain: decision
// latency samples, span-stamped decision log records, and span
// resolution back to the estimate inputs POP saw.
func TestObservabilityEndToEnd(t *testing.T) {
	reg := NewObsRegistry()
	var logBuf bytes.Buffer
	elog := NewEventLog(&logBuf)

	res, err := RunExperiment(context.Background(), ExperimentConfig{
		Workload:     "cifar10",
		CustomPolicy: tinyPOP(t),
		Machines:     2,
		MaxJobs:      5,
		Clock:        fastClk(),
		Seed:         2,
		Obs:          reg,
		EventLog:     elog,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Terminations+res.Completions == 0 {
		t.Fatal("nothing finished")
	}

	snap := reg.Snapshot()

	// Every OnIterationFinish must have produced a latency sample.
	lat := snap.Histograms[obs.DecisionLatencySeconds]
	if lat.Count == 0 {
		t.Fatal("no decision latency samples recorded")
	}
	var decisions int64
	for name, v := range snap.Counters {
		if strings.HasPrefix(name, "hyperdrive_decisions_total") {
			decisions += v
		}
	}
	if decisions != lat.Count {
		t.Fatalf("decision counters (%d) != latency samples (%d)", decisions, lat.Count)
	}
	if snap.Counters[obs.EpochsTotal] == 0 {
		t.Fatal("no epochs counted")
	}
	if snap.Counters[obs.MCMCFitsTotal] == 0 {
		t.Fatal("POP ran but recorded no MCMC fits")
	}
	if snap.Histograms[obs.MCMCFitDurationSeconds].Count == 0 {
		t.Fatal("no MCMC fit durations recorded")
	}

	// Decision log records must carry span IDs that resolve in the
	// tracer ring to spans carrying POP's estimate inputs.
	var stamped, resolved, withEstimate int
	sc := bufio.NewScanner(&logBuf)
	for sc.Scan() {
		var rec cluster.LogRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad log line: %v", err)
		}
		if rec.Kind != "decision" || rec.Span == "" {
			continue
		}
		stamped++
		sp, ok := reg.Tracer().Find(rec.Span)
		if !ok {
			continue // evicted from the ring; acceptable
		}
		resolved++
		if _, ok := sp.Attr("confidence"); ok {
			withEstimate++
		}
	}
	if stamped == 0 {
		t.Fatal("no span-stamped decision records in the event log")
	}
	if resolved == 0 {
		t.Fatal("no span ID resolved in the tracer ring")
	}
	if withEstimate == 0 {
		t.Fatal("no resolved span carries POP's estimate inputs")
	}

	// The introspection handler must serve this registry's state.
	srv := httptest.NewServer(NewObsHandler(reg, ObsHandlerOptions{}))
	defer srv.Close()

	body := get(t, srv.Client(), srv.URL+"/metrics")
	for _, want := range []string{
		"# TYPE hyperdrive_decisions_total counter",
		"# TYPE hyperdrive_decision_latency_seconds histogram",
		"hyperdrive_epochs_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	var jsnap ObsSnapshot
	if err := json.Unmarshal([]byte(get(t, srv.Client(), srv.URL+"/metrics.json")), &jsnap); err != nil {
		t.Fatalf("/metrics.json: %v", err)
	}
	if jsnap.Histograms[obs.DecisionLatencySeconds].Count != lat.Count {
		t.Fatal("/metrics.json disagrees with direct snapshot")
	}

	var rows []ObsJobRow
	if err := json.Unmarshal([]byte(get(t, srv.Client(), srv.URL+"/jobs")), &rows); err != nil {
		t.Fatalf("/jobs: %v", err)
	}
	if len(rows) == 0 {
		t.Fatal("/jobs served an empty classification table")
	}
}

// TestSimulationEmitsSameMetricNames checks that a simulated run
// populates the same metric families as the live runtime, so
// dashboards are directly comparable.
func TestSimulationEmitsSameMetricNames(t *testing.T) {
	tr, err := CollectTrace("cifar10", 6, 42)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewObsRegistry()
	if _, err := RunSimulation(SimConfig{Trace: tr, Policy: "pop", Machines: 2, Obs: reg}); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if snap.Histograms[obs.DecisionLatencySeconds].Count == 0 {
		t.Fatal("sim recorded no decision latency samples")
	}
	if snap.Counters[obs.EpochsTotal] == 0 {
		t.Fatal("sim counted no epochs")
	}
	if _, ok := snap.Gauges[obs.SlotsTotal]; !ok {
		t.Fatal("sim published no slot gauges")
	}
	if len(reg.JobTable()) == 0 {
		t.Fatal("sim published no job classification table")
	}
}

func get(t *testing.T, c *http.Client, url string) string {
	t.Helper()
	resp, err := c.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: %s", url, resp.Status)
	}
	return string(b)
}
