// LunarLander reinforcement-learning search: a reduced-scale
// reproduction of the paper's RL evaluation (§6.3). The environment's
// explicit "solved" condition — an average reward of 200 over 100
// consecutive trials — is the a-priori target, rewards are min-max
// normalized for cross-configuration comparison (Eq. 4), and the
// non-learning crash floor of -100 drives the kill threshold.
//
//	go run ./examples/lunarlander
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/hyperdrive-ml/hyperdrive"
)

func main() {
	const machines = 15 // the paper's 15 c4.xlarge training instances
	fmt.Printf("LunarLander search with POP on %d machines (solved at reward 200)...\n", machines)

	start := time.Now()
	res, err := hyperdrive.RunExperiment(context.Background(), hyperdrive.ExperimentConfig{
		Workload:     "lunarlander",
		Policy:       "pop",
		Machines:     machines,
		MaxJobs:      60,
		StopAtTarget: true,
		Seed:         42,
		SpeedUp:      100000,
		MaxDuration:  14 * 24 * time.Hour,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nwall time: %v\n", time.Since(start).Round(time.Millisecond))
	fmt.Printf("best block reward: %.1f (job %s)\n", res.Best, res.BestJob)
	if res.Reached {
		fmt.Printf("solved after %v of simulated training\n", res.TimeToTarget.Round(time.Minute))
	} else {
		fmt.Printf("not solved (stopped by %s after %v simulated)\n",
			res.StoppedBy, res.Duration.Round(time.Minute))
	}
	fmt.Printf("jobs: %d started, %d terminated early (learning-crashes and non-learners), %d suspended\n",
		res.Starts, res.Terminations, res.Suspends)

	crashes, started := 0, 0
	for _, j := range res.Jobs {
		if j.Epochs == 0 {
			continue
		}
		started++
		if j.Best <= -50 {
			crashes++
		}
	}
	fmt.Printf("%d/%d explored configurations never rose above reward -50 before being cut (paper: >50%% non-learning)\n",
		crashes, started)
}
