// LSTM sparsity exploration: the paper's §9 "Ongoing Work" case study.
// Group-lasso regularization (Wen et al., NeurIPS 2016) adds a
// hyperparameter lambda trading model sparsity (storage/compute
// savings) against perplexity (the primary language-modeling metric).
// HyperDrive's pieces in play:
//
//   - a custom workload (a synthetic PTB-style LSTM trainer) plugged
//     into the registry — "supports different learning domains";
//   - a user-defined *global termination criterion* over two metrics:
//     stop the whole experiment once some configuration achieves both
//     perplexity within tolerance of the state of the art AND a
//     sparsity target (the §9 mechanism: "user-defined global
//     termination criteria through HyperDrive's SAP API");
//   - POP scheduling the exploration of lambda and friends.
//
// The trainer reports a single primary metric (the normalized quality
// score derived from perplexity, higher is better); sparsity is a
// deterministic function of lambda that the termination criterion
// evaluates on the side.
//
//	go run ./examples/lstmsparsity
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"math"
	"time"

	"github.com/hyperdrive-ml/hyperdrive"
	"github.com/hyperdrive-ml/hyperdrive/internal/appstat"
	"github.com/hyperdrive-ml/hyperdrive/internal/param"
	"github.com/hyperdrive-ml/hyperdrive/internal/policy"
	"github.com/hyperdrive-ml/hyperdrive/internal/workload"
)

// Perplexity bounds for the score mapping: a PTB-style LSTM starts
// near ~700 and state-of-the-art medium models reach ~82 (Zaremba et
// al., 2014).
const (
	pplWorst = 700.0
	pplBest  = 78.0
)

// score maps perplexity onto a higher-is-better [0, 1] scale.
func score(ppl float64) float64 {
	s := math.Log(pplWorst/ppl) / math.Log(pplWorst/pplBest)
	return math.Max(0, math.Min(1, s))
}

// sparsityOf is the structural sparsity induced by lambda: more
// regularization prunes more weight groups (saturating around 95%).
func sparsityOf(lambda float64) float64 {
	n := math.Log10(lambda/1e-7) / math.Log10(1e-2/1e-7) // 0..1 over the search range
	return math.Max(0, math.Min(0.95, 1.15*n*n))
}

// lstmSpec is the custom workload: synthetic perplexity curves whose
// final quality degrades gently with lambda until over-regularization
// collapses it.
type lstmSpec struct {
	space *param.Space
}

func newLSTMSpec() *lstmSpec {
	return &lstmSpec{space: param.MustSpace(
		param.Param{Name: "lambda", Kind: param.LogUniform, Min: 1e-7, Max: 1e-2},
		param.Param{Name: "learning_rate", Kind: param.LogUniform, Min: 1e-4, Max: 1e-1},
		param.Param{Name: "hidden", Kind: param.Int, Min: 200, Max: 1500},
		param.Param{Name: "dropout", Kind: param.Uniform, Min: 0, Max: 0.7},
		param.Param{Name: "seq_len", Kind: param.Choice, Choices: []float64{20, 35, 50}},
		param.Param{Name: "clip", Kind: param.Uniform, Min: 1, Max: 10},
	)}
}

func (s *lstmSpec) Name() string                  { return "lstmsparse" }
func (s *lstmSpec) Space() *param.Space           { return s.space }
func (s *lstmSpec) Metric() workload.MetricKind   { return workload.Accuracy }
func (s *lstmSpec) MetricRange() (lo, hi float64) { return 0, 1 }
func (s *lstmSpec) Target() float64               { return 0.88 } // strong-model score
func (s *lstmSpec) KillThreshold() float64        { return 0.05 }
func (s *lstmSpec) RandomFloor() float64          { return 0.0 }
func (s *lstmSpec) EvalBoundary() int             { return 5 }
func (s *lstmSpec) MaxEpoch() int                 { return 60 }

// lstmTrainer produces the perplexity-score curve.
type lstmTrainer struct {
	spec  *lstmSpec
	cfg   param.Config
	seed  int64
	epoch int
}

func (s *lstmSpec) New(cfg param.Config, seed int64) workload.Trainer {
	return &lstmTrainer{spec: s, cfg: cfg, seed: seed}
}

func (t *lstmTrainer) Workload() string { return t.spec.Name() }
func (t *lstmTrainer) Epoch() int       { return t.epoch }
func (t *lstmTrainer) MaxEpoch() int    { return t.spec.MaxEpoch() }

// finalPPL is the asymptotic perplexity for this configuration.
func (t *lstmTrainer) finalPPL() float64 {
	lambda := t.cfg.Get("lambda", 1e-7)
	lr := t.cfg.Get("learning_rate", 1e-2)
	hidden := t.cfg.Get("hidden", 650)

	base := 82.0
	// Capacity: small models lose a bit.
	base += 40 * math.Max(0, 1-hidden/650)
	// Learning rate: quadratic penalty in log-distance from 1e-2.
	dlr := math.Log10(lr / 1e-2)
	base += 60 * dlr * dlr
	// Group lasso: gentle quality loss until over-regularization.
	sp := sparsityOf(lambda)
	base += 10 * sp
	if sp > 0.9 {
		base += 300 * (sp - 0.9) * 10
	}
	return base
}

func (t *lstmTrainer) Step() (workload.Sample, bool) {
	if t.epoch >= t.spec.MaxEpoch() {
		return workload.Sample{Epoch: t.epoch}, true
	}
	t.epoch++
	e := float64(t.epoch)
	// Perplexity decays exponentially toward the final value.
	ppl := t.finalPPL() + (pplWorst-t.finalPPL())*math.Exp(-e/6)
	// Deterministic seed-dependent jitter.
	jitter := math.Sin(float64(t.seed)*37.1+e*2.13) * 2.5
	s := workload.Sample{
		Epoch:    t.epoch,
		Metric:   score(ppl + jitter),
		Duration: 3 * time.Minute,
	}
	return s, t.epoch >= t.spec.MaxEpoch()
}

func (t *lstmTrainer) Snapshot() ([]byte, error) {
	return json.Marshal(map[string]interface{}{"workload": t.spec.Name(), "epoch": t.epoch})
}

func (t *lstmTrainer) Restore(b []byte) error {
	var st struct {
		Workload string `json:"workload"`
		Epoch    int    `json:"epoch"`
	}
	if err := json.Unmarshal(b, &st); err != nil {
		return err
	}
	if st.Workload != t.spec.Name() {
		return fmt.Errorf("snapshot for %q", st.Workload)
	}
	t.epoch = st.Epoch
	return nil
}

func main() {
	const (
		sparsityTarget = 0.60 // prune at least 60% of weight groups
		scoreTolerance = 0.90 // keep within tolerance of SOTA perplexity
	)
	spec := newLSTMSpec()
	registry := workload.NewRegistry()
	registry.Register(spec)

	// Track which configuration each job explores so the termination
	// criterion can evaluate sparsity(lambda).
	lambdas := make(map[string]float64)
	gen := &trackingGenerator{space: spec.Space(), lambdas: lambdas}

	// The §9 mechanism: a global termination criterion over BOTH
	// metrics — perplexity (via the primary score) and sparsity.
	stop := func(db *appstat.DB, info policy.Info) bool {
		for _, job := range db.Jobs() {
			best, ok := db.Best(job)
			if !ok || best < scoreTolerance {
				continue
			}
			if sparsityOf(lambdas[string(job)]) >= sparsityTarget {
				return true
			}
		}
		return false
	}

	pop, err := hyperdrive.NewPOP(hyperdrive.POPOptions{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := hyperdrive.RunExperiment(context.Background(), hyperdrive.ExperimentConfig{
		Workload:        "lstmsparse",
		Registry:        registry,
		CustomPolicy:    pop,
		CustomGenerator: gen,
		Machines:        4,
		MaxJobs:         40,
		Seed:            11,
		SpeedUp:         50000,
		StopCondition:   stop,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("group-lasso lambda exploration (POP, multi-metric termination):")
	for _, j := range res.Jobs {
		if j.Epochs == 0 {
			continue
		}
		lambda := lambdas[string(j.ID)]
		fmt.Printf("  %-8s lambda=%.1e score=%.3f sparsity=%.0f%% epochs=%2d %s\n",
			j.ID, lambda, j.Best, sparsityOf(lambda)*100, j.Epochs, j.FinalState)
	}
	fmt.Printf("stopped by: %s\n", res.StoppedBy)
	if res.StoppedBy == "condition" {
		fmt.Printf("found a model within perplexity tolerance at >= %.0f%% sparsity\n", sparsityTarget*100)
	}
}

// trackingGenerator samples the space and remembers each job's lambda.
type trackingGenerator struct {
	space   *param.Space
	lambdas map[string]float64
	next    int
}

func (g *trackingGenerator) CreateJob() (string, param.Config, error) {
	if g.next >= 40 {
		return "", nil, fmt.Errorf("exhausted")
	}
	id := fmt.Sprintf("lstm-%02d", g.next)
	// Deterministic stratified sweep over lambda with jittered
	// companions.
	cfg := param.Config{
		"lambda":        1e-7 * math.Pow(10, 5*float64(g.next%10)/9),
		"learning_rate": 1e-2 * math.Pow(10, 0.5*math.Sin(float64(g.next)*1.7)),
		"hidden":        float64(300 + 100*(g.next%8)),
		"dropout":       0.2 + 0.05*float64(g.next%5),
		"seq_len":       35,
		"clip":          5,
	}
	g.lambdas[id] = cfg["lambda"]
	g.next++
	return id, cfg, nil
}

func (g *trackingGenerator) ReportFinalPerformance(string, float64) {}
