// Custom SAP and custom generator: HyperDrive decouples scheduling
// policy from runtime (paper §4.1 "Support and enable reuse of
// existing and future search and scheduling algorithms"), so new
// policies are a three-method interface and new generators a
// two-method interface. This example plugs in:
//
//   - MedianStop: a median-elimination SAP (terminate any job whose
//     best metric is below the median of its cohort at the boundary) —
//     a popular rule from systems like Google Vizier;
//
//   - a generator that sweeps only the learning rate while pinning
//     every other hyperparameter to a hand-tuned value.
//
//     go run ./examples/customsap
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"strings"

	"github.com/hyperdrive-ml/hyperdrive"
	"github.com/hyperdrive-ml/hyperdrive/internal/param"
	"github.com/hyperdrive-ml/hyperdrive/internal/sched"
)

// MedianStop terminates jobs below the cohort median at each
// evaluation boundary.
type MedianStop struct{}

// Name implements hyperdrive.Policy.
func (*MedianStop) Name() string { return "medianstop" }

// AllocateJobs implements hyperdrive.Policy: greedy like the Default
// SAP.
func (*MedianStop) AllocateJobs(ctx hyperdrive.PolicyContext) {
	for ctx.IdleSlots() > 0 {
		if _, ok := ctx.StartIdleJob(); !ok {
			return
		}
	}
}

// ApplicationStat implements hyperdrive.Policy.
func (*MedianStop) ApplicationStat(hyperdrive.PolicyContext, sched.Event) {}

// OnIterationFinish implements hyperdrive.Policy.
func (*MedianStop) OnIterationFinish(ctx hyperdrive.PolicyContext, ev sched.Event) sched.Decision {
	info := ctx.Info()
	if ev.Epoch%info.EvalBoundary != 0 || ev.Epoch >= info.MaxEpoch {
		return sched.Continue
	}
	// Collect cohort bests at a comparable stage.
	var bests []float64
	for _, id := range ctx.ActiveJobs() {
		if b, ok := ctx.DB().Best(id); ok {
			bests = append(bests, b)
		}
	}
	if len(bests) < 4 {
		return sched.Continue
	}
	sort.Float64s(bests)
	median := bests[len(bests)/2]
	mine, ok := ctx.DB().Best(ev.Job)
	if ok && mine < median {
		return sched.Terminate
	}
	return sched.Continue
}

// lrSweep emits configurations that differ only in learning rate.
type lrSweep struct {
	rates []float64
	next  int
}

// CreateJob implements hyperdrive.Generator.
func (g *lrSweep) CreateJob() (string, param.Config, error) {
	if g.next >= len(g.rates) {
		return "", nil, fmt.Errorf("lr sweep exhausted")
	}
	id := fmt.Sprintf("lr-%02d", g.next)
	cfg := param.Config{
		"learning_rate": g.rates[g.next],
		"lr_gamma":      0.95, "lr_step": 10, "momentum": 0.9,
		"weight_decay": 4e-4, "batch_size": 128,
		"conv1_filters": 64, "conv2_filters": 64, "conv3_filters": 64,
		"fc_size": 256, "init_std": 0.01, "dropout": 0.2,
		"pool_type": 0, "lr_policy": 1,
	}
	g.next++
	return id, cfg, nil
}

// ReportFinalPerformance implements hyperdrive.Generator.
func (g *lrSweep) ReportFinalPerformance(string, float64) {}

func main() {
	gen := &lrSweep{rates: []float64{1e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1}}
	res, err := hyperdrive.RunExperiment(context.Background(), hyperdrive.ExperimentConfig{
		Workload:        "cifar10",
		CustomPolicy:    &MedianStop{},
		CustomGenerator: gen,
		Machines:        4,
		MaxJobs:         8,
		Seed:            1,
		SpeedUp:         50000,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("learning-rate sweep under the MedianStop custom SAP:")
	for _, j := range res.Jobs {
		bar := int(j.Best * 40)
		fmt.Printf("  %-6s best=%.3f epochs=%3d %-10s %s\n",
			j.ID, j.Best, j.Epochs, j.FinalState, strings.Repeat("#", bar))
	}
	fmt.Printf("best: %.2f%% accuracy (job %s), %d/%d terminated by the median rule\n",
		res.Best*100, res.BestJob, res.Terminations, res.Starts)
}
