// CIFAR-10 policy comparison: a reduced-scale reproduction of the
// paper's supervised-learning evaluation (§6.2). A trace of random
// configurations is collected once, then replayed through the
// discrete-event simulator under all four scheduling policies with the
// identical configuration order — the paper's fair-comparison protocol
// (§6.1) — measuring time to reach 77% validation accuracy on a
// 4-machine cluster.
//
//	go run ./examples/cifar10
package main

import (
	"fmt"
	"log"

	"github.com/hyperdrive-ml/hyperdrive"
)

func main() {
	const (
		configs  = 50
		machines = 4
		seed     = 2022
	)
	fmt.Printf("collecting trace: %d CIFAR-10 configurations...\n", configs)
	tr, err := hyperdrive.CollectTrace("cifar10", configs, seed)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("replaying under each policy on %d machines (target 77%%):\n\n", machines)
	fmt.Printf("%-10s %-9s %14s %10s %10s %10s\n",
		"policy", "reached", "time-to-target", "terms", "suspends", "completions")
	var popTTT, defTTT float64
	for _, pol := range []string{"pop", "bandit", "earlyterm", "default"} {
		res, err := hyperdrive.RunSimulation(hyperdrive.SimConfig{
			Trace:        tr,
			Policy:       pol,
			Machines:     machines,
			StopAtTarget: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		ttt := "-"
		if res.Reached {
			ttt = fmt.Sprintf("%.2fh", res.TimeToTarget.Hours())
			switch pol {
			case "pop":
				popTTT = res.TimeToTarget.Hours()
			case "default":
				defTTT = res.TimeToTarget.Hours()
			}
		}
		fmt.Printf("%-10s %-9v %14s %10d %10d %10d\n",
			pol, res.Reached, ttt, res.Terminations, res.Suspends, res.Completions)
	}
	if popTTT > 0 && defTTT > 0 {
		fmt.Printf("\nPOP speedup over Default (random search): %.1fx\n", defTTT/popTTT)
	}
}
