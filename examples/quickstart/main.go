// Quickstart: explore CIFAR-10 hyperparameters with POP scheduling on
// four in-process machines, stopping as soon as some configuration
// reaches 77% validation accuracy.
//
//	go run ./examples/quickstart
//
// Time is compressed 20,000x, so the multi-hour simulated experiment
// finishes in a few seconds of wall time.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/hyperdrive-ml/hyperdrive"
)

func main() {
	start := time.Now()
	res, err := hyperdrive.RunExperiment(context.Background(), hyperdrive.ExperimentConfig{
		Workload:     "cifar10",
		Policy:       "pop",
		Machines:     4,
		MaxJobs:      40,
		StopAtTarget: true,
		Seed:         7,
		SpeedUp:      20000,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("explored %d configurations in %v of wall time\n",
		res.Starts, time.Since(start).Round(time.Millisecond))
	fmt.Printf("best validation accuracy: %.2f%% (job %s)\n", res.Best*100, res.BestJob)
	if res.Reached {
		fmt.Printf("reached the 77%% target after %v of simulated training\n",
			res.TimeToTarget.Round(time.Minute))
	} else {
		fmt.Printf("target not reached (stopped by %s after %v simulated)\n",
			res.StoppedBy, res.Duration.Round(time.Minute))
	}
	fmt.Printf("scheduling: %d terminated early, %d suspended, %d resumed, %d curve fits\n",
		res.Terminations, res.Suspends, res.Resumes, res.Fits)
}
