module github.com/hyperdrive-ml/hyperdrive

go 1.22
