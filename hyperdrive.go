// Package hyperdrive is a Go implementation of HyperDrive, the
// hyperparameter-exploration framework with POP scheduling from
// Rasley et al., "HyperDrive: Exploring Hyperparameters with POP
// Scheduling" (ACM/IFIP/USENIX Middleware 2017).
//
// It provides:
//
//   - the POP scheduling algorithm (Promising/Opportunistic/Poor
//     classification, probabilistic expected-remaining-time estimation,
//     dynamic exploitation/exploration slot division);
//   - the baseline policies evaluated in the paper: Default, Bandit
//     (TuPAQ-style action elimination), and EarlyTerm (Domhan et al.'s
//     predictive termination);
//   - the learning-curve predictor: a weighted ensemble of eleven
//     parametric curve families sampled with affine-invariant MCMC;
//   - the HyperDrive runtime: Experiment Runner, Hyperparameter
//     Generators (random/grid/adaptive), Job & Resource Managers, TCP
//     node agents, and suspend/resume of training jobs across machines;
//   - the trace-driven discrete-event simulator used for the paper's
//     sensitivity analysis;
//   - synthetic CIFAR-10 and LunarLander training workloads calibrated
//     to the population statistics the paper reports.
//
// # Quick start
//
//	res, err := hyperdrive.RunExperiment(ctx, hyperdrive.ExperimentConfig{
//		Workload:     "cifar10",
//		Policy:       "pop",
//		Machines:     4,
//		MaxJobs:      100,
//		StopAtTarget: true,
//	})
//
// See the examples/ directory for runnable programs and DESIGN.md for
// the architecture.
package hyperdrive

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"github.com/hyperdrive-ml/hyperdrive/internal/appstat"
	"github.com/hyperdrive-ml/hyperdrive/internal/checkpoint"
	"github.com/hyperdrive-ml/hyperdrive/internal/clock"
	"github.com/hyperdrive-ml/hyperdrive/internal/cluster"
	"github.com/hyperdrive-ml/hyperdrive/internal/curve"
	"github.com/hyperdrive-ml/hyperdrive/internal/hypergen"
	"github.com/hyperdrive-ml/hyperdrive/internal/obs"
	"github.com/hyperdrive-ml/hyperdrive/internal/param"
	"github.com/hyperdrive-ml/hyperdrive/internal/policy"
	"github.com/hyperdrive-ml/hyperdrive/internal/sim"
	"github.com/hyperdrive-ml/hyperdrive/internal/trace"
	"github.com/hyperdrive-ml/hyperdrive/internal/workload"
)

// Re-exported building blocks. The aliases let downstream code
// construct custom policies, generators, and workloads against the
// same interfaces the built-ins use.
type (
	// Policy is a Scheduling Algorithm Policy (SAP): the three
	// up-calls of the paper's §4.2.
	Policy = policy.Policy
	// PolicyContext is the view of the experiment a SAP receives.
	PolicyContext = policy.Context
	// POPOptions tunes the POP policy.
	POPOptions = policy.POPOptions
	// BanditOptions tunes the Bandit baseline.
	BanditOptions = policy.BanditOptions
	// EarlyTermOptions tunes the EarlyTerm baseline.
	EarlyTermOptions = policy.EarlyTermOptions
	// SHAOptions tunes the SuccessiveHalving policy.
	SHAOptions = policy.SHAOptions
	// Generator produces candidate configurations.
	Generator = hypergen.Generator
	// ParamSpace is a hyperparameter search space.
	ParamSpace = param.Space
	// ParamConfig is one hyperparameter assignment.
	ParamConfig = param.Config
	// WorkloadSpec describes a trainable workload.
	WorkloadSpec = workload.Spec
	// Trace is a replayable workload trace.
	Trace = trace.Trace
	// ExperimentResult summarizes a live experiment.
	ExperimentResult = cluster.Result
	// SimResult summarizes a simulated experiment.
	SimResult = sim.Result
	// CurveConfig is the learning-curve predictor's MCMC budget.
	CurveConfig = curve.Config
	// AppStatDB is the application-statistics database handed to
	// custom stop conditions.
	AppStatDB = appstat.DB
	// PolicyInfo carries experiment constants to policies and stop
	// conditions.
	PolicyInfo = policy.Info
	// EventLog records scheduler events as JSON lines.
	EventLog = cluster.EventLog
	// TraceRecorder captures a live run as a replayable trace.
	TraceRecorder = trace.Recorder
	// WorkloadRegistry resolves workload names to specs.
	WorkloadRegistry = workload.Registry
	// WorkloadOptions defines a custom workload for NewCustomWorkload.
	WorkloadOptions = workload.CustomOptions
	// ObsRegistry collects runtime metrics, decision traces, and the
	// live job classification table. A nil *ObsRegistry disables all
	// telemetry at zero cost.
	ObsRegistry = obs.Registry
	// ObsHandlerOptions tunes the introspection HTTP handler.
	ObsHandlerOptions = obs.HandlerOptions
	// ObsSnapshot is the JSON form of a registry's current metrics.
	ObsSnapshot = obs.Snapshot
	// ObsJobRow is one row of the live job classification table.
	ObsJobRow = obs.JobRow
	// TraceWriter accumulates Chrome trace-event JSON (Perfetto /
	// chrome://tracing format) for a run. A nil *TraceWriter disables
	// trace export at zero cost.
	TraceWriter = obs.TraceWriter
	// QualityAudit accumulates the search-quality audit trail: every
	// decision-time prediction joined against realized outcomes (or
	// sim-oracle ground truth). A nil *QualityAudit disables auditing
	// at zero cost.
	QualityAudit = obs.QualityAudit
	// QualityReport is the computed calibration summary (reliability
	// bins, Brier score, ERT error percentiles, early-termination
	// confusion, regret curve).
	QualityReport = obs.QualityReport
	// QualityMeta describes the run a quality audit belongs to.
	QualityMeta = obs.QualityMeta
)

// Policy, generator, and workload constructors re-exported for custom
// wiring.
var (
	// NewPOP builds the POP policy.
	NewPOP = policy.NewPOP
	// NewBandit builds the Bandit baseline.
	NewBandit = policy.NewBandit
	// NewEarlyTerm builds the EarlyTerm baseline.
	NewEarlyTerm = policy.NewEarlyTerm
	// NewDefaultPolicy builds the greedy Default SAP.
	NewDefaultPolicy = policy.NewDefault
	// NewSuccessiveHalving builds the successive-halving (HyperBand
	// core) policy.
	NewSuccessiveHalving = policy.NewSuccessiveHalving
	// NewBarrier wraps a policy with barrier-like epoch scheduling.
	NewBarrier = policy.NewBarrier
	// NewEventLog wraps a writer as an experiment event log.
	NewEventLog = cluster.NewEventLog
	// NewTraceRecorder builds a live-run trace recorder.
	NewTraceRecorder = trace.NewRecorder
	// NewWorkloadRegistry returns a registry preloaded with the
	// built-in workloads.
	NewWorkloadRegistry = workload.NewRegistry
	// NewCustomWorkload builds a workload Spec from a curve function.
	NewCustomWorkload = workload.NewCustom
	// FastCurveConfig is the reduced MCMC budget for sweeps.
	FastCurveConfig = curve.FastConfig
	// PaperCurveConfig is the paper's 100x700 production budget.
	PaperCurveConfig = curve.PaperConfig
	// NewObsRegistry builds an empty observability registry.
	NewObsRegistry = obs.NewRegistry
	// NewObsHandler builds the introspection http.Handler (/metrics,
	// /metrics.json, /jobs, /spans) for a registry.
	NewObsHandler = obs.Handler
	// NewTraceWriter builds an empty Chrome trace-event sink.
	NewTraceWriter = obs.NewTraceWriter
	// NewQualityAudit builds an empty search-quality audit.
	NewQualityAudit = obs.NewQualityAudit
	// ReadQualityLog reconstructs a quality audit from its serialized
	// JSONL log.
	ReadQualityLog = obs.ReadQualityLog
	// ValidateTraceEvents checks exported trace bytes against the
	// invariants the repo's tooling relies on.
	ValidateTraceEvents = obs.ValidateTraceEvents
)

// ExperimentConfig configures RunExperiment. Zero values select
// paper defaults.
type ExperimentConfig struct {
	// Workload is "cifar10" or "lunarlander" (or a custom registered
	// workload when Registry is set).
	Workload string
	// Policy is "pop", "bandit", "earlyterm", or "default"; ignored
	// when CustomPolicy is set.
	Policy string
	// CustomPolicy overrides Policy with a user SAP instance.
	CustomPolicy Policy
	// Generator is "random", "grid", or "adaptive"; ignored when
	// CustomGenerator is set.
	Generator string
	// CustomGenerator overrides Generator.
	CustomGenerator Generator
	// Machines is the number of training slots (paper: 4 GPUs for
	// CIFAR-10, 15 instances for LunarLander).
	Machines int
	// AgentAddrs, when non-empty, runs the experiment over remote
	// node agents at these addresses instead of in-process workers.
	AgentAddrs []string
	// MaxJobs is the configuration budget (paper: 100).
	MaxJobs int
	// MaxDuration is Tmax on the experiment clock.
	MaxDuration time.Duration
	// StopAtTarget ends the run when the target metric is reached.
	StopAtTarget bool
	// Target overrides the workload target when non-zero.
	Target float64
	// Seed controls configuration sampling and training noise.
	Seed int64
	// SpeedUp is the wall-clock compression factor (default 600: one
	// simulated minute per 100ms). Ignored when Clock is set.
	SpeedUp float64
	// Clock overrides the experiment clock entirely.
	Clock clock.Clock
	// PredictorBudget is "fast" (default), "paper", or "original".
	PredictorBudget string
	// CheckpointMode is "framework" (default) or "criu".
	CheckpointMode string
	// Registry supplies custom workloads.
	Registry *workload.Registry
	// StopCondition, when non-nil, ends the experiment once it
	// returns true (evaluated on every statistic) — the §9
	// "user-defined global termination criteria" extension.
	StopCondition func(db *AppStatDB, info PolicyInfo) bool
	// Recorder, when non-nil, captures the run as a replayable trace.
	Recorder *trace.Recorder
	// EventLog, when non-nil, receives the scheduler's event stream
	// as JSON lines.
	EventLog *EventLog
	// Obs, when non-nil, collects runtime metrics and decision traces
	// for the experiment. Created implicitly when ObsListen is set.
	Obs *ObsRegistry
	// ObsListen, when non-empty, serves the live introspection
	// endpoint (/metrics, /metrics.json, /jobs, /spans) on this
	// address for the duration of the run.
	ObsListen string
	// ObsMux, when non-nil, mounts the introspection endpoints on the
	// caller's mux under ObsPathPrefix instead of a dedicated listener
	// — the embeddable form of ObsListen. Every registration is
	// instance-scoped (nothing ever lands on http.DefaultServeMux), so
	// several experiments in one process expose disjoint metric
	// surfaces by mounting under distinct prefixes.
	ObsMux *http.ServeMux
	// ObsPathPrefix is the ObsMux mount prefix (e.g. "/exp1"); empty
	// mounts at the mux root. Must be unique per experiment sharing a
	// mux (ServeMux registrations are permanent).
	ObsPathPrefix string
	// ObsPprof additionally mounts net/http/pprof under /debug/pprof/
	// on the introspection endpoint.
	ObsPprof bool
	// TraceSink, when non-nil, receives Chrome trace events for the
	// run: one track per job and per agent, decision slices, and
	// instant markers for classification changes, agent failures, and
	// job re-placements.
	TraceSink *TraceWriter
	// TraceOut, when non-empty, writes the run's Chrome trace to this
	// file. A sink is created implicitly when TraceSink is nil.
	TraceOut string
	// QualityOut, when non-empty, enables the search-quality audit on
	// the run's registry and writes its JSONL log to this file after
	// the run (render it with hdreport).
	QualityOut string
}

// Workloads lists the built-in workload names.
func Workloads() []string { return workload.NewRegistry().Names() }

// Policies lists the built-in policy names.
func Policies() []string { return policy.NewRegistry().Names() }

// predictorConfig resolves a budget name.
func predictorConfig(name string) (curve.Config, error) {
	switch name {
	case "", "fast":
		return curve.FastConfig(), nil
	case "paper":
		return curve.PaperConfig(), nil
	case "original":
		return curve.OriginalConfig(), nil
	default:
		return curve.Config{}, fmt.Errorf("hyperdrive: unknown predictor budget %q", name)
	}
}

// buildPolicy resolves an ExperimentConfig's policy selection.
func buildPolicy(cfg ExperimentConfig) (Policy, error) {
	if cfg.CustomPolicy != nil {
		return cfg.CustomPolicy, nil
	}
	pred, err := predictorConfig(cfg.PredictorBudget)
	if err != nil {
		return nil, err
	}
	switch cfg.Policy {
	case "", "pop":
		return policy.NewPOP(policy.POPOptions{Predictor: pred})
	case "bandit":
		return policy.NewBandit(policy.BanditOptions{})
	case "earlyterm":
		return policy.NewEarlyTerm(policy.EarlyTermOptions{Predictor: pred})
	case "default":
		return policy.NewDefault(), nil
	case "sha":
		return policy.NewSuccessiveHalving(policy.SHAOptions{})
	default:
		return nil, fmt.Errorf("hyperdrive: unknown policy %q (have %v)", cfg.Policy, Policies())
	}
}

// buildGenerator resolves an ExperimentConfig's generator selection.
func buildGenerator(cfg ExperimentConfig, space *param.Space) (Generator, error) {
	if cfg.CustomGenerator != nil {
		return cfg.CustomGenerator, nil
	}
	switch cfg.Generator {
	case "", "random":
		return hypergen.NewRandom(space, cfg.Seed, cfg.MaxJobs), nil
	case "grid":
		return hypergen.NewGrid(space, 2), nil
	case "adaptive":
		return hypergen.NewAdaptive(space, cfg.Seed, cfg.MaxJobs), nil
	case "gp":
		return hypergen.NewGP(space, cfg.Seed, cfg.MaxJobs, hypergen.GPOptions{})
	default:
		return nil, fmt.Errorf("hyperdrive: unknown generator %q", cfg.Generator)
	}
}

// RunExperiment executes one live hyperparameter exploration
// experiment — the Experiment Runner client of the paper's §4.2.
func RunExperiment(ctx context.Context, cfg ExperimentConfig) (*ExperimentResult, error) {
	if cfg.Workload == "" {
		cfg.Workload = "cifar10"
	}
	if cfg.MaxJobs == 0 {
		cfg.MaxJobs = 100
	}
	reg := cfg.Registry
	if reg == nil {
		reg = workload.NewRegistry()
	}
	spec, err := reg.Lookup(cfg.Workload)
	if err != nil {
		return nil, err
	}
	pol, err := buildPolicy(cfg)
	if err != nil {
		return nil, err
	}
	gen, err := buildGenerator(cfg, spec.Space())
	if err != nil {
		return nil, err
	}
	clk := cfg.Clock
	if clk == nil {
		speed := cfg.SpeedUp
		if speed == 0 {
			speed = 600
		}
		clk = clock.NewScaled(time.Now(), speed)
	}
	mode := checkpoint.Framework
	switch cfg.CheckpointMode {
	case "", "framework":
	case "criu":
		mode = checkpoint.CRIU
	default:
		return nil, fmt.Errorf("hyperdrive: unknown checkpoint mode %q", cfg.CheckpointMode)
	}

	serveObs := cfg.ObsListen != "" || cfg.ObsMux != nil
	obsReg := cfg.Obs
	if obsReg == nil && serveObs {
		obsReg = obs.NewRegistry()
	}
	sink := cfg.TraceSink
	if sink == nil && cfg.TraceOut != "" {
		sink = obs.NewTraceWriter()
	}
	if sink != nil && obsReg == nil {
		// Span propagation rides on the registry's tracer; trace export
		// without one would miss the decision slices.
		obsReg = obs.NewRegistry()
	}
	if cfg.QualityOut != "" || serveObs {
		// A served endpoint exposes the live calibration report at
		// /debug/obs/quality (hdreport -addr) even without an export file.
		if obsReg == nil {
			obsReg = obs.NewRegistry()
		}
		obsReg.EnableQuality(obs.QualityMeta{})
	}
	// Sample Go runtime health (goroutines, heap, GC pauses) for the
	// duration of the run.
	stopSampler := obs.StartRuntimeSampler(obsReg, 5*time.Second)
	defer stopSampler()
	// A served endpoint also gets queryable time series
	// (/debug/obs/history) feeding hdtop's sparklines.
	if serveObs {
		obsReg.EnableHistory(0)
		stopHistory := obs.StartHistorySampler(obsReg, 2*time.Second)
		defer stopHistory()
	}

	ccfg := cluster.Config{
		Workload:       cfg.Workload,
		Registry:       reg,
		Generator:      gen,
		Policy:         pol,
		Machines:       cfg.Machines,
		MaxJobs:        cfg.MaxJobs,
		MaxDuration:    cfg.MaxDuration,
		Clock:          clk,
		StopAtTarget:   cfg.StopAtTarget,
		TargetOverride: cfg.Target,
		CheckpointMode: mode,
		CheckpointSeed: cfg.Seed,
		Seed:           cfg.Seed,
		StopCondition:  cfg.StopCondition,
		Recorder:       cfg.Recorder,
		EventLog:       cfg.EventLog,
		Obs:            obsReg,
		TraceSink:      sink,
	}

	if cfg.ObsMux != nil {
		h := obs.Handler(obsReg, obs.HandlerOptions{Pprof: cfg.ObsPprof})
		if prefix := strings.TrimSuffix(cfg.ObsPathPrefix, "/"); prefix != "" {
			cfg.ObsMux.Handle(prefix+"/", http.StripPrefix(prefix, h))
		} else {
			cfg.ObsMux.Handle("/", h)
		}
	}
	if cfg.ObsListen != "" {
		ln, err := net.Listen("tcp", cfg.ObsListen)
		if err != nil {
			return nil, fmt.Errorf("hyperdrive: obs listen: %w", err)
		}
		srv := &http.Server{Handler: obs.Handler(obsReg, obs.HandlerOptions{Pprof: cfg.ObsPprof})}
		go srv.Serve(ln)
		defer srv.Close()
	}

	if len(cfg.AgentAddrs) > 0 {
		events := make(chan cluster.Event, 256)
		var execs []cluster.Executor
		for _, addr := range cfg.AgentAddrs {
			// Supervised dial: heartbeats, quarantine, and automatic
			// reconnect with backoff (DESIGN.md §12).
			c, err := cluster.DialAgentSupervised(addr, events, cluster.SupervisorOptions{Obs: obsReg})
			if err != nil {
				for _, ex := range execs {
					ex.Close()
				}
				return nil, err
			}
			execs = append(execs, c)
		}
		multi, err := cluster.NewMultiExecutor(execs...)
		if err != nil {
			return nil, err
		}
		defer multi.Close()
		ccfg.Executor = multi
		ccfg.Events = events
	} else if cfg.Machines == 0 {
		ccfg.Machines = 4 // the paper's private-cluster size
	}

	exp, err := cluster.New(ccfg)
	if err != nil {
		return nil, err
	}
	res, err := exp.Run(ctx)
	if err != nil {
		return nil, err
	}
	if cfg.TraceOut != "" {
		if werr := sink.WriteFile(cfg.TraceOut); werr != nil {
			return res, fmt.Errorf("hyperdrive: trace export: %w", werr)
		}
	}
	if cfg.QualityOut != "" {
		if werr := writeQualityLog(cfg.QualityOut, obsReg.Quality()); werr != nil {
			return res, werr
		}
	}
	return res, nil
}

// writeQualityLog serializes an audit's JSONL log to a file.
func writeQualityLog(path string, q *obs.QualityAudit) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("hyperdrive: quality export: %w", err)
	}
	if err := q.WriteLog(f); err != nil {
		f.Close()
		return fmt.Errorf("hyperdrive: quality export: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("hyperdrive: quality export: %w", err)
	}
	return nil
}

// SimConfig configures RunSimulation: a trace-driven discrete-event
// run (paper §7).
type SimConfig struct {
	// Trace to replay; exactly one of Trace or TracePath is set.
	Trace *Trace
	// TracePath loads the trace from a file.
	TracePath string
	// Policy is "pop", "bandit", "earlyterm", or "default"; ignored
	// when CustomPolicy is set.
	Policy string
	// CustomPolicy overrides Policy.
	CustomPolicy Policy
	// Machines is the slot count.
	Machines int
	// MaxDuration is Tmax.
	MaxDuration time.Duration
	// StopAtTarget measures time-to-target.
	StopAtTarget bool
	// PredictorBudget is "fast" (default), "paper", or "original".
	PredictorBudget string
	// Obs, when non-nil, collects the same metric names the live
	// runtime emits, so simulated and real runs are comparable.
	Obs *ObsRegistry
	// TraceSink, when non-nil, receives Chrome trace events with
	// virtual-clock timestamps (a machine-occupancy Gantt, decision
	// slices, classification markers).
	TraceSink *TraceWriter
	// TraceOut, when non-empty, writes the simulated run's Chrome
	// trace to this file; a sink is created implicitly when TraceSink
	// is nil.
	TraceOut string
	// Quality, when non-nil, receives the search-quality audit trail
	// (oracle ground truth from the trace curves, every boundary
	// decision's prediction, outcomes).
	Quality *QualityAudit
	// QualityOut, when non-empty, writes the audit's JSONL log to this
	// file; an audit is created implicitly when Quality is nil. The
	// log is byte-identical across runs and hosts (virtual-clock
	// timestamps only) — render it with hdreport.
	QualityOut string
}

// RunSimulation replays a trace under a policy in the discrete-event
// simulator.
func RunSimulation(cfg SimConfig) (*SimResult, error) {
	tr := cfg.Trace
	if tr == nil {
		if cfg.TracePath == "" {
			return nil, fmt.Errorf("hyperdrive: SimConfig needs Trace or TracePath")
		}
		var err error
		tr, err = trace.ReadFile(cfg.TracePath)
		if err != nil {
			return nil, err
		}
	}
	pol := cfg.CustomPolicy
	if pol == nil {
		pred, err := predictorConfig(cfg.PredictorBudget)
		if err != nil {
			return nil, err
		}
		switch cfg.Policy {
		case "", "pop":
			pol, err = policy.NewPOP(policy.POPOptions{Predictor: pred})
		case "bandit":
			pol, err = policy.NewBandit(policy.BanditOptions{})
		case "earlyterm":
			pol, err = policy.NewEarlyTerm(policy.EarlyTermOptions{Predictor: pred})
		case "default":
			pol = policy.NewDefault()
		case "sha":
			pol, err = policy.NewSuccessiveHalving(policy.SHAOptions{})
		default:
			err = fmt.Errorf("hyperdrive: unknown policy %q", cfg.Policy)
		}
		if err != nil {
			return nil, err
		}
	}
	sink := cfg.TraceSink
	if sink == nil && cfg.TraceOut != "" {
		sink = obs.NewTraceWriter()
	}
	qual := cfg.Quality
	if qual == nil && cfg.QualityOut != "" {
		qual = obs.NewQualityAudit(obs.QualityMeta{})
	}
	res, err := sim.Run(sim.Options{
		Trace:        tr,
		Machines:     cfg.Machines,
		Policy:       pol,
		MaxDuration:  cfg.MaxDuration,
		StopAtTarget: cfg.StopAtTarget,
		Obs:          cfg.Obs,
		TraceSink:    sink,
		Quality:      qual,
	})
	if err != nil {
		return nil, err
	}
	if cfg.TraceOut != "" {
		if werr := sink.WriteFile(cfg.TraceOut); werr != nil {
			return res, fmt.Errorf("hyperdrive: trace export: %w", werr)
		}
	}
	if cfg.QualityOut != "" {
		if werr := writeQualityLog(cfg.QualityOut, qual); werr != nil {
			return res, werr
		}
	}
	return res, nil
}

// CollectTrace runs n seeded random configurations of the workload to
// completion and records their curves — the Trace Generator (§7.1).
func CollectTrace(workloadName string, n int, seed int64) (*Trace, error) {
	reg := workload.NewRegistry()
	spec, err := reg.Lookup(workloadName)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	configs := make([]param.Config, n)
	seeds := make([]int64, n)
	for i := range configs {
		configs[i] = spec.Space().Sample(rng)
		seeds[i] = seed + int64(i)
	}
	return trace.Collect(spec, configs, seeds)
}
