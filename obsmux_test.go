package hyperdrive

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestObsMuxInstanceScoped pins the multi-tenant obs contract: two
// experiments in one process, each with its own registry mounted on a
// shared injected mux under distinct prefixes, must expose disjoint
// metric surfaces — each endpoint reports exactly its own run, with no
// cross-talk through process-global state. Before the ObsMux option,
// a second in-process experiment had no way to serve its metrics
// without a second listener (or a collision on a shared one).
func TestObsMuxInstanceScoped(t *testing.T) {
	mux := http.NewServeMux()
	run := func(prefix string, maxJobs int, reg *ObsRegistry) *ExperimentResult {
		res, err := RunExperiment(context.Background(), ExperimentConfig{
			Workload:      "cifar10",
			Policy:        "default",
			Machines:      2,
			MaxJobs:       maxJobs,
			Clock:         fastClk(),
			Seed:          1,
			Obs:           reg,
			ObsMux:        mux,
			ObsPathPrefix: prefix,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	reg1, reg2 := NewObsRegistry(), NewObsRegistry()
	res1 := run("/exp1", 3, reg1)
	res2 := run("/exp2", 5, reg2)
	if res1.Starts == res2.Starts {
		t.Fatalf("want distinct start counts to prove scoping, got %d for both", res1.Starts)
	}

	srv := httptest.NewServer(mux)
	defer srv.Close()
	snapshot := func(prefix string) ObsSnapshot {
		resp, err := http.Get(srv.URL + prefix + "/metrics.json")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s/metrics.json: HTTP %d", prefix, resp.StatusCode)
		}
		var snap ObsSnapshot
		if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
			t.Fatal(err)
		}
		return snap
	}

	snap1 := snapshot("/exp1")
	snap2 := snapshot("/exp2")
	const starts = "hyperdrive_starts_total"
	if got := snap1.Counters[starts]; got != int64(res1.Starts) {
		t.Errorf("exp1 %s = %d, want its own %d", starts, got, res1.Starts)
	}
	if got := snap2.Counters[starts]; got != int64(res2.Starts) {
		t.Errorf("exp2 %s = %d, want its own %d", starts, got, res2.Starts)
	}
	const completions = "hyperdrive_completions_total"
	if got := snap1.Counters[completions]; got != int64(res1.Completions) {
		t.Errorf("exp1 %s = %d, want %d", completions, got, res1.Completions)
	}
	if got := snap2.Counters[completions]; got != int64(res2.Completions) {
		t.Errorf("exp2 %s = %d, want %d", completions, got, res2.Completions)
	}
}
