package main

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

func chdir(t *testing.T, dir string) {
	t.Helper()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chdir(old) })
}

func TestRunCleanRepo(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"./..."}, &out, &errw); code != 0 {
		t.Fatalf("exit %d on the repo; stdout:\n%s\nstderr:\n%s", code, out.String(), errw.String())
	}
	if out.Len() != 0 {
		t.Fatalf("clean run printed findings:\n%s", out.String())
	}
}

func TestRunFindings(t *testing.T) {
	chdir(t, "../../internal/lint/testdata/src")
	var out, errw bytes.Buffer
	code := run(nil, &out, &errw)
	if code != 1 {
		t.Fatalf("exit %d on the fixture module, want 1; stderr:\n%s", code, errw.String())
	}
	got := out.String()
	for _, analyzer := range []string{"detclock", "metricnames", "locksafe", "erralways", "floateq"} {
		if !strings.Contains(got, analyzer+": ") {
			t.Errorf("fixture run missing %s findings; output:\n%s", analyzer, got)
		}
	}
	if !strings.Contains(errw.String(), "finding(s)") {
		t.Errorf("stderr missing summary: %q", errw.String())
	}
}

func TestRunList(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-list"}, &out, &errw); code != 0 {
		t.Fatalf("-list exit %d", code)
	}
	for _, analyzer := range []string{"detclock", "metricnames", "locksafe", "erralways", "floateq"} {
		if !strings.Contains(out.String(), analyzer) {
			t.Errorf("-list missing %s:\n%s", analyzer, out.String())
		}
	}
}
