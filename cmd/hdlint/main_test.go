package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// allAnalyzers is the full suite every fixture run must exercise.
var allAnalyzers = []string{
	"detclock", "metricnames", "locksafe", "erralways", "floateq",
	"dettaint", "exhaustive", "locksafe2", "spanpair",
}

func chdir(t *testing.T, dir string) {
	t.Helper()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chdir(old) })
}

func TestRunCleanRepo(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"./..."}, &out, &errw); code != 0 {
		t.Fatalf("exit %d on the repo; stdout:\n%s\nstderr:\n%s", code, out.String(), errw.String())
	}
	if out.Len() != 0 {
		t.Fatalf("clean run printed findings:\n%s", out.String())
	}
}

func TestRunFindings(t *testing.T) {
	chdir(t, "../../internal/lint/testdata/src")
	var out, errw bytes.Buffer
	code := run(nil, &out, &errw)
	if code != 1 {
		t.Fatalf("exit %d on the fixture module, want 1; stderr:\n%s", code, errw.String())
	}
	got := out.String()
	for _, analyzer := range allAnalyzers {
		if !strings.Contains(got, analyzer+": ") {
			t.Errorf("fixture run missing %s findings; output:\n%s", analyzer, got)
		}
	}
	if !strings.Contains(errw.String(), "finding(s)") {
		t.Errorf("stderr missing summary: %q", errw.String())
	}
}

func TestRunList(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-list"}, &out, &errw); code != 0 {
		t.Fatalf("-list exit %d", code)
	}
	for _, analyzer := range allAnalyzers {
		if !strings.Contains(out.String(), analyzer) {
			t.Errorf("-list missing %s:\n%s", analyzer, out.String())
		}
	}
}

var update = flag.Bool("update", false, "rewrite golden files")

// TestRunJSONGolden pins the -json output over the fixture module
// byte-for-byte: sorted by position, paths relative to the module root,
// stable field order. Regenerate with `go test ./cmd/hdlint -update`
// after changing fixtures or analyzer messages.
func TestRunJSONGolden(t *testing.T) {
	golden, err := filepath.Abs("testdata/fixture_findings.json")
	if err != nil {
		t.Fatal(err)
	}
	chdir(t, "../../internal/lint/testdata/src")
	var out, errw bytes.Buffer
	if code := run([]string{"-json"}, &out, &errw); code != 1 {
		t.Fatalf("exit %d on the fixture module, want 1; stderr:\n%s", code, errw.String())
	}
	if *update {
		if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("-json output differs from golden (regenerate with -update):\n--- got ---\n%s\n--- want ---\n%s", out.Bytes(), want)
	}
}

// TestRunJSONClean pins the clean-repo shape: an empty JSON array, not
// null, so downstream tooling can always range over the result.
func TestRunJSONClean(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-json", "./cmd/hdlint"}, &out, &errw); code != 0 {
		t.Fatalf("exit %d; stderr:\n%s", code, errw.String())
	}
	if strings.TrimSpace(out.String()) != "[]" {
		t.Fatalf("clean -json output = %q, want []", out.String())
	}
}
