// Command hdlint runs the hyperdrive domain analyzers over the module
// and prints file:line:col diagnostics. The suite spans single-package
// checks (detclock, metricnames, locksafe, erralways, floateq) and
// whole-program ones built on the cross-package call graph (dettaint,
// exhaustive, locksafe2, spanpair).
//
// Usage:
//
//	hdlint [-list] [-json] [pattern ...]
//
// Patterns follow the usual go-tool shapes ("./...", "./internal/sim",
// "internal/policy/..."); the default is the whole module. Exit status
// is 0 when clean, 1 when findings were reported, 2 on a load failure.
//
// -json prints the findings as a JSON array (sorted by position, file
// paths relative to the module root) for tooling; the exit status is
// unchanged.
//
// Deliberate exceptions are declared in-code:
//
//	//hdlint:ignore <analyzer>[,<analyzer>] <reason>
//
// which suppresses the named analyzers on the directive's line and the
// line below. Directives without a reason, naming unknown analyzers,
// or suppressing nothing are themselves findings.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"github.com/hyperdrive-ml/hyperdrive/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonFinding is the -json wire shape of one diagnostic.
type jsonFinding struct {
	File     string `json:"file"` // slash-separated, relative to the module root
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func run(args []string, stdout, stderr io.Writer) int {
	patterns := make([]string, 0, len(args))
	list, asJSON := false, false
	for _, a := range args {
		switch a {
		case "-list", "--list":
			list = true
		case "-json", "--json":
			asJSON = true
		case "-h", "-help", "--help":
			fmt.Fprintln(stderr, "usage: hdlint [-list] [-json] [pattern ...]")
			return 0
		default:
			patterns = append(patterns, a)
		}
	}
	if list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "hdlint: %v\n", err)
		return 2
	}
	mod, err := lint.LoadModule(cwd)
	if err != nil {
		fmt.Fprintf(stderr, "hdlint: %v\n", err)
		return 2
	}
	match, err := mod.Match(cwd, patterns)
	if err != nil {
		fmt.Fprintf(stderr, "hdlint: %v\n", err)
		return 2
	}
	findings := mod.Run(lint.All(), match)
	if asJSON {
		out := make([]jsonFinding, 0, len(findings)) // 0-length so empty encodes as []
		for _, f := range findings {
			out = append(out, jsonFinding{
				File:     relToRoot(mod.Root, f.Pos.Filename),
				Line:     f.Pos.Line,
				Col:      f.Pos.Column,
				Analyzer: f.Analyzer,
				Message:  f.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "hdlint: %v\n", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "hdlint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// relToRoot renders filename relative to the module root with forward
// slashes, falling back to the input when it lies outside the root.
func relToRoot(root, filename string) string {
	rel, err := filepath.Rel(root, filename)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(filename)
	}
	return filepath.ToSlash(rel)
}
