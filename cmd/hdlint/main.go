// Command hdlint runs the hyperdrive domain analyzers (detclock,
// metricnames, locksafe, erralways, floateq) over the module and
// prints file:line:col diagnostics.
//
// Usage:
//
//	hdlint [-list] [pattern ...]
//
// Patterns follow the usual go-tool shapes ("./...", "./internal/sim",
// "internal/policy/..."); the default is the whole module. Exit status
// is 0 when clean, 1 when findings were reported, 2 on a load failure.
//
// Deliberate exceptions are declared in-code:
//
//	//hdlint:ignore <analyzer>[,<analyzer>] <reason>
//
// which suppresses the named analyzers on the directive's line and the
// line below. Directives without a reason, naming unknown analyzers,
// or suppressing nothing are themselves findings.
package main

import (
	"fmt"
	"io"
	"os"

	"github.com/hyperdrive-ml/hyperdrive/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	patterns := make([]string, 0, len(args))
	list := false
	for _, a := range args {
		switch a {
		case "-list", "--list":
			list = true
		case "-h", "-help", "--help":
			fmt.Fprintln(stderr, "usage: hdlint [-list] [pattern ...]")
			return 0
		default:
			patterns = append(patterns, a)
		}
	}
	if list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "hdlint: %v\n", err)
		return 2
	}
	mod, err := lint.LoadModule(cwd)
	if err != nil {
		fmt.Fprintf(stderr, "hdlint: %v\n", err)
		return 2
	}
	match, err := mod.Match(cwd, patterns)
	if err != nil {
		fmt.Fprintf(stderr, "hdlint: %v\n", err)
		return 2
	}
	findings := mod.Run(lint.All(), match)
	for _, f := range findings {
		fmt.Fprintln(stdout, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "hdlint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
