// Command hyperdrive runs one hyperparameter-exploration experiment:
// the Experiment Runner client of the paper's §4.2. Training executes
// either on in-process workers or on remote hdagent daemons, against a
// scaled clock that compresses simulated training time.
//
// Examples:
//
//	# POP over 100 random CIFAR-10 configs on 4 in-process slots,
//	# stopping at 77% validation accuracy, 600x time compression.
//	hyperdrive -workload cifar10 -policy pop -machines 4 -jobs 100 -stop-at-target
//
//	# Same experiment over two remote agents.
//	hyperdrive -agents host1:7070,host2:7070 -policy pop -jobs 100
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"github.com/hyperdrive-ml/hyperdrive"
	"github.com/hyperdrive-ml/hyperdrive/internal/workload"
)

// workloadRegistry exposes the built-in workloads for trace recording.
func workloadRegistry() *workload.Registry { return workload.NewRegistry() }

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hyperdrive:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hyperdrive", flag.ContinueOnError)
	var (
		workloadName = fs.String("workload", "cifar10", "workload: cifar10 | lunarlander")
		policyName   = fs.String("policy", "pop", "policy: pop | bandit | earlyterm | default")
		generator    = fs.String("generator", "random", "generator: random | grid | adaptive")
		machines     = fs.Int("machines", 4, "in-process training slots")
		agents       = fs.String("agents", "", "comma-separated agent addresses (overrides -machines)")
		jobs         = fs.Int("jobs", 100, "configuration budget")
		maxDur       = fs.Duration("max-duration", 24*time.Hour, "Tmax on the experiment clock")
		stopAtTarget = fs.Bool("stop-at-target", true, "stop when the target metric is reached")
		target       = fs.Float64("target", 0, "target metric override (0 = workload default)")
		seed         = fs.Int64("seed", 1, "random seed")
		speedup      = fs.Float64("speedup", 600, "clock compression factor")
		budget       = fs.String("predictor", "fast", "curve predictor budget: fast | paper | original")
		verbose      = fs.Bool("v", false, "print per-job outcomes")
		recordPath   = fs.String("record", "", "write the run as a replayable trace to this file")
		logPath      = fs.String("log", "", "write the scheduler event log (JSON lines) to this file")
		obsAddr      = fs.String("obs", "", "serve the live introspection endpoint (metrics, jobs, spans) on this address, e.g. localhost:8089")
		pprof        = fs.Bool("pprof", false, "expose net/http/pprof on the -obs endpoint")
		traceOut     = fs.String("trace-out", "", "write a Chrome trace (Perfetto-loadable) of the run to this file")
		qualityOut   = fs.String("quality-out", "", "write the prediction-quality audit log (JSON lines) to this file; render with hdreport")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := hyperdrive.ExperimentConfig{
		Workload:        *workloadName,
		Policy:          *policyName,
		Generator:       *generator,
		Machines:        *machines,
		MaxJobs:         *jobs,
		MaxDuration:     *maxDur,
		StopAtTarget:    *stopAtTarget,
		Target:          *target,
		Seed:            *seed,
		SpeedUp:         *speedup,
		PredictorBudget: *budget,
		ObsListen:       *obsAddr,
		ObsPprof:        *pprof,
		TraceOut:        *traceOut,
		QualityOut:      *qualityOut,
	}
	if *agents != "" {
		cfg.AgentAddrs = strings.Split(*agents, ",")
	}
	var recorder *hyperdrive.TraceRecorder
	if *recordPath != "" {
		reg := workloadRegistry()
		spec, err := reg.Lookup(cfg.Workload)
		if err != nil {
			return err
		}
		recorder = hyperdrive.NewTraceRecorder(spec)
		cfg.Recorder = recorder
	}
	if *logPath != "" {
		f, err := os.Create(*logPath)
		if err != nil {
			return err
		}
		defer f.Close()
		cfg.EventLog = hyperdrive.NewEventLog(f)
		// The log batches appends through a background flusher; drain it
		// before the deferred f.Close so the file is complete on exit.
		defer cfg.EventLog.Close()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	fmt.Printf("experiment: workload=%s policy=%s machines=%d jobs=%d speedup=%gx\n",
		cfg.Workload, cfg.Policy, cfg.Machines, cfg.MaxJobs, *speedup)
	start := time.Now()
	res, err := hyperdrive.RunExperiment(ctx, cfg)
	if err != nil {
		return err
	}

	fmt.Printf("\nresult (wall time %v):\n", time.Since(start).Round(time.Millisecond))
	fmt.Printf("  stopped by:      %s\n", res.StoppedBy)
	fmt.Printf("  best metric:     %.4f (job %s)\n", res.Best, res.BestJob)
	if res.Reached {
		fmt.Printf("  time to target:  %v (simulated)\n", res.TimeToTarget.Round(time.Second))
	}
	fmt.Printf("  experiment time: %v (simulated)\n", res.Duration.Round(time.Second))
	fmt.Printf("  jobs: started=%d completed=%d terminated=%d suspended=%d resumed=%d\n",
		res.Starts, res.Completions, res.Terminations, res.Suspends, res.Resumes)
	if res.Fits > 0 {
		fmt.Printf("  curve fits:      %d\n", res.Fits)
	}
	if n := len(res.Overheads.Records()); n > 0 {
		var totalKB float64
		for _, r := range res.Overheads.Records() {
			totalKB += float64(r.Size) / 1024
		}
		fmt.Printf("  suspend overhead: %d snapshots, %.0f KB total\n", n, totalKB)
	}
	if *traceOut != "" {
		fmt.Printf("  trace:           %s (load in Perfetto or chrome://tracing)\n", *traceOut)
	}
	if *qualityOut != "" {
		fmt.Printf("  quality audit:   %s (render with hdreport)\n", *qualityOut)
	}
	if recorder != nil {
		tr, complete, err := recorder.Finish()
		if err != nil {
			return fmt.Errorf("record: %w", err)
		}
		if err := tr.WriteFile(*recordPath); err != nil {
			return err
		}
		fmt.Printf("  recorded trace:  %s (%d jobs, complete=%v)\n", *recordPath, len(tr.Jobs), complete)
	}
	if *verbose {
		fmt.Println("\nper-job outcomes:")
		for _, j := range res.Jobs {
			fmt.Printf("  %-10s epochs=%3d best=%.4f busy=%8v state=%v\n",
				j.ID, j.Epochs, j.Best, j.BusyTime.Round(time.Second), j.FinalState)
		}
	}
	return nil
}
