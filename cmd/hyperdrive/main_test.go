package main

import (
	"os"
	"testing"
)

func quietStdout(t *testing.T) {
	t.Helper()
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	t.Cleanup(func() { os.Stdout = old; devnull.Close() })
}

func TestRunErrors(t *testing.T) {
	quietStdout(t)
	if err := run([]string{"-workload", "nope", "-jobs", "1", "-machines", "1"}); err == nil {
		t.Fatal("accepted unknown workload")
	}
	if err := run([]string{"-policy", "nope", "-jobs", "1", "-machines", "1"}); err == nil {
		t.Fatal("accepted unknown policy")
	}
}

func TestRunTinyExperiment(t *testing.T) {
	quietStdout(t)
	err := run([]string{
		"-policy", "default", "-jobs", "2", "-machines", "2",
		"-speedup", "200000", "-stop-at-target=false", "-v",
	})
	if err != nil {
		t.Fatal(err)
	}
}
