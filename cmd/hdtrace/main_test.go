package main

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/hyperdrive-ml/hyperdrive/internal/trace"
)

// quietStdout silences command output during tests.
func quietStdout(t *testing.T) {
	t.Helper()
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	t.Cleanup(func() { os.Stdout = old; devnull.Close() })
}

func TestCollectInfoPermutePipeline(t *testing.T) {
	quietStdout(t)
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "t.json")
	permPath := filepath.Join(dir, "p.json")

	if err := run([]string{"collect", "-workload", "cifar10", "-n", "4", "-seed", "3", "-o", tracePath}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"info", "-i", tracePath}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"permute", "-i", tracePath, "-seed", "9", "-o", permPath}); err != nil {
		t.Fatal(err)
	}

	orig, err := trace.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	perm, err := trace.ReadFile(permPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(orig.Jobs) != 4 || len(perm.Jobs) != 4 {
		t.Fatalf("jobs = %d / %d", len(orig.Jobs), len(perm.Jobs))
	}
}

func TestRunErrors(t *testing.T) {
	quietStdout(t)
	if err := run(nil); err == nil {
		t.Fatal("accepted no subcommand")
	}
	if err := run([]string{"frobnicate"}); err == nil {
		t.Fatal("accepted unknown subcommand")
	}
	if err := run([]string{"collect", "-workload", "nope", "-o", filepath.Join(t.TempDir(), "x")}); err == nil {
		t.Fatal("accepted unknown workload")
	}
	if err := run([]string{"info", "-i", "/nonexistent"}); err == nil {
		t.Fatal("accepted missing trace")
	}
	if err := run([]string{"permute", "-i", "/nonexistent", "-o", "/tmp/x"}); err == nil {
		t.Fatal("accepted missing input")
	}
}
