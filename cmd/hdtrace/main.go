// Command hdtrace is the Trace Generator CLI (paper §7.1): it collects
// replayable workload traces, inspects them, and permutes configuration
// order for sensitivity studies.
//
//	hdtrace collect -workload cifar10 -n 100 -seed 1 -o cifar.trace
//	hdtrace info -i cifar.trace
//	hdtrace permute -i cifar.trace -seed 7 -o cifar-perm.trace
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/hyperdrive-ml/hyperdrive"
	"github.com/hyperdrive-ml/hyperdrive/internal/stats"
	"github.com/hyperdrive-ml/hyperdrive/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hdtrace:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: hdtrace <collect|info|permute> [flags]")
	}
	switch args[0] {
	case "collect":
		return collect(args[1:])
	case "info":
		return info(args[1:])
	case "permute":
		return permute(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func collect(args []string) error {
	fs := flag.NewFlagSet("collect", flag.ContinueOnError)
	var (
		workloadName = fs.String("workload", "cifar10", "workload: cifar10 | lunarlander")
		n            = fs.Int("n", 100, "number of configurations")
		seed         = fs.Int64("seed", 1, "sampling seed")
		out          = fs.String("o", "trace.json", "output file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	tr, err := hyperdrive.CollectTrace(*workloadName, *n, *seed)
	if err != nil {
		return err
	}
	if err := tr.WriteFile(*out); err != nil {
		return err
	}
	fmt.Printf("wrote %d-job %s trace to %s\n", len(tr.Jobs), tr.Workload, *out)
	return nil
}

func info(args []string) error {
	fs := flag.NewFlagSet("info", flag.ContinueOnError)
	in := fs.String("i", "trace.json", "input trace")
	if err := fs.Parse(args); err != nil {
		return err
	}
	tr, err := trace.ReadFile(*in)
	if err != nil {
		return err
	}
	fmt.Printf("workload:       %s\n", tr.Workload)
	fmt.Printf("jobs:           %d\n", len(tr.Jobs))
	fmt.Printf("max epoch:      %d\n", tr.MaxEpoch)
	fmt.Printf("target:         %g\n", tr.Target)
	fmt.Printf("kill threshold: %g\n", tr.KillThreshold)
	fmt.Printf("eval boundary:  %d\n", tr.EvalBoundary)

	var finals, epochSecs []float64
	winners, poor := 0, 0
	for _, j := range tr.Jobs {
		best := tr.MetricMin
		var dur time.Duration
		for _, s := range j.Samples {
			if s.Metric > best {
				best = s.Metric
			}
			dur += s.Duration()
		}
		finals = append(finals, best)
		epochSecs = append(epochSecs, dur.Seconds()/float64(len(j.Samples)))
		if best >= tr.Target {
			winners++
		}
		if best <= tr.KillThreshold {
			poor++
		}
	}
	sum, err := stats.Summarize(finals)
	if err != nil {
		return err
	}
	fmt.Printf("best metric:    mean=%.3f min=%.3f max=%.3f\n", sum.Mean, sum.Min, sum.Max)
	fmt.Printf("winners:        %d/%d reach the target\n", winners, len(tr.Jobs))
	fmt.Printf("poor:           %d/%d never beat the kill threshold\n", poor, len(tr.Jobs))
	fmt.Printf("epoch duration: mean %.1fs\n", stats.Mean(epochSecs))
	return nil
}

func permute(args []string) error {
	fs := flag.NewFlagSet("permute", flag.ContinueOnError)
	var (
		in   = fs.String("i", "trace.json", "input trace")
		out  = fs.String("o", "trace-perm.json", "output trace")
		seed = fs.Int64("seed", 1, "permutation seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	tr, err := trace.ReadFile(*in)
	if err != nil {
		return err
	}
	perm := tr.Permute(*seed)
	if err := perm.WriteFile(*out); err != nil {
		return err
	}
	fmt.Printf("wrote permutation (seed %d) to %s\n", *seed, *out)
	return nil
}
