// Command hdlog summarizes a HyperDrive scheduler event log (the JSON
// lines written by `hyperdrive -log`): per-job lifecycles, decision
// counts, and the experiment timeline — the post-mortem view of what
// the scheduler did and why an experiment took as long as it did.
//
//	hyperdrive -policy pop -jobs 50 -log run.jsonl
//	hdlog -in run.jsonl
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"github.com/hyperdrive-ml/hyperdrive/internal/cluster"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hdlog:", err)
		os.Exit(1)
	}
}

// jobSummary aggregates one job's records.
type jobSummary struct {
	id        string
	starts    int
	resumes   int
	stats     int
	lastEpoch int
	best      float64
	hasBest   bool
	decisions map[string]int
	first     time.Time
	last      time.Time
	final     string
}

func run(args []string) error {
	fs := flag.NewFlagSet("hdlog", flag.ContinueOnError)
	var (
		in  = fs.String("in", "", "event log file (JSON lines); - for stdin")
		top = fs.Int("top", 10, "jobs to list (by stat volume)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var r io.Reader
	switch *in {
	case "":
		return fmt.Errorf("provide -in <file> (or - for stdin)")
	case "-":
		r = os.Stdin
	default:
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}

	jobs := make(map[string]*jobSummary)
	kinds := make(map[string]int)
	decisions := make(map[string]int)
	var first, last time.Time
	var stoppedBy string
	lines := 0

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec cluster.LogRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			return fmt.Errorf("line %d: %w", lines+1, err)
		}
		lines++
		kinds[rec.Kind]++
		if first.IsZero() || rec.T.Before(first) {
			first = rec.T
		}
		if rec.T.After(last) {
			last = rec.T
		}
		if rec.Kind == "stop" {
			stoppedBy = rec.Detail
			continue
		}
		if rec.Job == "" {
			continue
		}
		j := jobs[rec.Job]
		if j == nil {
			j = &jobSummary{id: rec.Job, decisions: make(map[string]int), first: rec.T}
			jobs[rec.Job] = j
		}
		j.last = rec.T
		switch rec.Kind {
		case "start":
			j.starts++
		case "resume":
			j.resumes++
		case "stat":
			j.stats++
			if rec.Epoch > j.lastEpoch {
				j.lastEpoch = rec.Epoch
			}
			if !j.hasBest || rec.Metric > j.best {
				j.best = rec.Metric
				j.hasBest = true
			}
		case "decision":
			j.decisions[rec.Decision]++
			decisions[rec.Decision]++
		case "completed", "terminated", "suspended", "error":
			j.final = rec.Kind
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if lines == 0 {
		return fmt.Errorf("no records in %s", *in)
	}

	fmt.Printf("events: %d records over %v (experiment clock)\n", lines, last.Sub(first).Round(time.Second))
	if stoppedBy != "" {
		fmt.Printf("stopped by: %s\n", stoppedBy)
	}
	fmt.Printf("record kinds:")
	for _, k := range sortedKeys(kinds) {
		fmt.Printf(" %s=%d", k, kinds[k])
	}
	fmt.Println()
	fmt.Printf("decisions:")
	for _, k := range sortedKeys(decisions) {
		fmt.Printf(" %s=%d", k, decisions[k])
	}
	fmt.Println()

	ordered := make([]*jobSummary, 0, len(jobs))
	for _, j := range jobs {
		ordered = append(ordered, j)
	}
	sort.Slice(ordered, func(a, b int) bool { return ordered[a].stats > ordered[b].stats })
	if *top > len(ordered) {
		*top = len(ordered)
	}
	fmt.Printf("\n%d jobs (top %d by epochs):\n", len(ordered), *top)
	fmt.Printf("%-12s %6s %6s %7s %8s %10s %-10s\n", "job", "epochs", "best", "starts", "resumes", "lifetime", "final")
	for _, j := range ordered[:*top] {
		fmt.Printf("%-12s %6d %6.3f %7d %8d %10v %-10s\n",
			j.id, j.lastEpoch, j.best, j.starts, j.resumes,
			j.last.Sub(j.first).Round(time.Second), j.final)
	}
	return nil
}

func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
