// Command hdlog summarizes a HyperDrive scheduler event log (the JSON
// lines written by `hyperdrive -log`): per-job lifecycles, decision
// counts, agent failures, and the experiment timeline — the
// post-mortem view of what the scheduler did and why an experiment
// took as long as it did. It also converts a log into Chrome
// trace-event JSON, so a run recorded without -trace-out can still be
// inspected in Perfetto after the fact.
//
//	hyperdrive -policy pop -jobs 50 -log run.jsonl
//	hdlog -in run.jsonl
//	hdlog -in run.jsonl -trace run.trace.json
//	hdlog -check-trace run.trace.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"github.com/hyperdrive-ml/hyperdrive/internal/cluster"
	"github.com/hyperdrive-ml/hyperdrive/internal/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hdlog:", err)
		os.Exit(1)
	}
}

// jobSummary aggregates one job's records.
type jobSummary struct {
	id        string
	starts    int
	resumes   int
	replaces  int
	stats     int
	lastEpoch int
	best      float64
	hasBest   bool
	decisions map[string]int
	first     time.Time
	last      time.Time
	final     string
}

// agentSummary aggregates one node agent's failure records.
type agentSummary struct {
	id     string
	downs  int
	ups    int
	errors int
}

func run(args []string) error {
	fs := flag.NewFlagSet("hdlog", flag.ContinueOnError)
	var (
		in         = fs.String("in", "", "event log file (JSON lines); - for stdin")
		top        = fs.Int("top", 10, "jobs to list (by stat volume)")
		traceOut   = fs.String("trace", "", "convert the log to Chrome trace-event JSON at this path")
		checkTrace = fs.String("check-trace", "", "validate a Chrome trace file (as written by -trace or -trace-out) and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *checkTrace != "" {
		data, err := os.ReadFile(*checkTrace)
		if err != nil {
			return err
		}
		if err := obs.ValidateTraceEvents(data); err != nil {
			return err
		}
		fmt.Printf("%s: valid Chrome trace-event JSON\n", *checkTrace)
		return nil
	}
	var r io.Reader
	switch *in {
	case "":
		return fmt.Errorf("provide -in <file> (or - for stdin)")
	case "-":
		r = os.Stdin
	default:
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}

	jobs := make(map[string]*jobSummary)
	agents := make(map[string]*agentSummary)
	kinds := make(map[string]int)
	decisions := make(map[string]int)
	var first, last time.Time
	var stoppedBy string
	lines, replacements := 0, 0
	var conv *traceConverter
	if *traceOut != "" {
		conv = newTraceConverter()
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec cluster.LogRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			return fmt.Errorf("line %d: %w", lines+1, err)
		}
		lines++
		kinds[rec.Kind]++
		conv.observe(rec)
		if first.IsZero() || rec.T.Before(first) {
			first = rec.T
		}
		if rec.T.After(last) {
			last = rec.T
		}
		if rec.Agent != "" {
			a := agents[rec.Agent]
			if a == nil {
				a = &agentSummary{id: rec.Agent}
				agents[rec.Agent] = a
			}
			switch rec.Kind {
			case "agent_down":
				a.downs++
			case "agent_up":
				a.ups++
			case "agent_error":
				a.errors++
			}
		}
		if rec.Kind == "stop" {
			stoppedBy = rec.Detail
			continue
		}
		if rec.Job == "" {
			continue
		}
		j := jobs[rec.Job]
		if j == nil {
			j = &jobSummary{id: rec.Job, decisions: make(map[string]int), first: rec.T}
			jobs[rec.Job] = j
		}
		j.last = rec.T
		switch rec.Kind {
		case "start":
			j.starts++
		case "resume":
			j.resumes++
		case "replace":
			j.replaces++
			replacements++
		case "stat":
			j.stats++
			if rec.Epoch > j.lastEpoch {
				j.lastEpoch = rec.Epoch
			}
			if !j.hasBest || rec.Metric > j.best {
				j.best = rec.Metric
				j.hasBest = true
			}
		case "decision":
			j.decisions[rec.Decision]++
			decisions[rec.Decision]++
		case "completed", "terminated", "suspended", "error", "lost":
			j.final = rec.Kind
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if lines == 0 {
		return fmt.Errorf("no records in %s", *in)
	}

	fmt.Printf("events: %d records over %v (experiment clock)\n", lines, last.Sub(first).Round(time.Second))
	if stoppedBy != "" {
		fmt.Printf("stopped by: %s\n", stoppedBy)
	}
	fmt.Printf("record kinds:")
	for _, k := range sortedKeys(kinds) {
		fmt.Printf(" %s=%d", k, kinds[k])
	}
	fmt.Println()
	fmt.Printf("decisions:")
	for _, k := range sortedKeys(decisions) {
		fmt.Printf(" %s=%d", k, decisions[k])
	}
	fmt.Println()
	if replacements > 0 {
		replaced := 0
		for _, j := range jobs {
			if j.replaces > 0 {
				replaced++
			}
		}
		fmt.Printf("re-placed jobs: %d (%d re-placement(s) after agent loss)\n", replaced, replacements)
	}
	if len(agents) > 0 {
		ids := make([]string, 0, len(agents))
		for id := range agents {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		fmt.Printf("agents:")
		for _, id := range ids {
			a := agents[id]
			fmt.Printf(" %s(down=%d up=%d err=%d)", a.id, a.downs, a.ups, a.errors)
		}
		fmt.Println()
	}

	ordered := make([]*jobSummary, 0, len(jobs))
	for _, j := range jobs {
		ordered = append(ordered, j)
	}
	sort.Slice(ordered, func(a, b int) bool { return ordered[a].stats > ordered[b].stats })
	if *top > len(ordered) {
		*top = len(ordered)
	}
	fmt.Printf("\n%d jobs (top %d by epochs):\n", len(ordered), *top)
	fmt.Printf("%-12s %6s %6s %7s %8s %8s %10s %-10s\n", "job", "epochs", "best", "starts", "resumes", "replaces", "lifetime", "final")
	for _, j := range ordered[:*top] {
		fmt.Printf("%-12s %6d %6.3f %7d %8d %8d %10v %-10s\n",
			j.id, j.lastEpoch, j.best, j.starts, j.resumes, j.replaces,
			j.last.Sub(j.first).Round(time.Second), j.final)
	}
	if conv != nil {
		if err := conv.w.WriteFile(*traceOut); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		fmt.Printf("\nwrote Chrome trace to %s (load in Perfetto or chrome://tracing)\n", *traceOut)
	}
	return nil
}

// traceConverter rebuilds the Chrome trace a live run would have
// exported, from the event log alone: the same "scheduler" process
// with one track per job, one per agent, and a decisions track, so a
// log-only run is still Perfetto-inspectable.
type traceConverter struct {
	w *obs.TraceWriter
}

func newTraceConverter() *traceConverter {
	return &traceConverter{w: obs.NewTraceWriter()}
}

// observe folds one record into the trace. Nil-safe, so the scan loop
// calls it unconditionally.
func (c *traceConverter) observe(rec cluster.LogRecord) {
	if c == nil {
		return
	}
	const proc = "scheduler"
	jobTrack := "job " + rec.Job
	switch rec.Kind {
	case "start", "resume":
		c.w.Begin(proc, jobTrack, rec.Kind+" on "+rec.Slot, rec.T,
			map[string]interface{}{"slot": rec.Slot})
	case "completed", "terminated", "suspended", "error", "lost":
		c.w.Instant(proc, jobTrack, rec.Kind, rec.T, nil)
		c.w.End(proc, jobTrack, rec.T)
	case "replace":
		c.w.Instant(proc, jobTrack, "re-placed", rec.T,
			map[string]interface{}{"slot": rec.Slot})
	case "decision":
		args := map[string]interface{}{"decision": rec.Decision}
		if rec.Span != "" {
			args["span"] = rec.Span
		}
		c.w.Complete(proc, "decisions", "decision "+rec.Job, rec.T, 0, args)
	case "agent_down", "agent_up", "agent_error":
		name := map[string]string{
			"agent_down": "agent down", "agent_up": "agent reconnected", "agent_error": "agent error",
		}[rec.Kind]
		var args map[string]interface{}
		if rec.Detail != "" {
			args = map[string]interface{}{"detail": rec.Detail}
		}
		c.w.Instant(proc, "agent "+rec.Agent, name, rec.T, args)
	case "stop":
		c.w.Instant(proc, "experiment", "stop: "+rec.Detail, rec.T, nil)
	}
}

func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
