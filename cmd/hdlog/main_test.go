package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/hyperdrive-ml/hyperdrive"
	"github.com/hyperdrive-ml/hyperdrive/internal/clock"
)

func quietStdout(t *testing.T) {
	t.Helper()
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	t.Cleanup(func() { os.Stdout = old; devnull.Close() })
}

func TestSummarizeRealLog(t *testing.T) {
	quietStdout(t)
	path := filepath.Join(t.TempDir(), "run.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	_, err = hyperdrive.RunExperiment(context.Background(), hyperdrive.ExperimentConfig{
		Workload: "cifar10",
		Policy:   "default",
		Machines: 2,
		MaxJobs:  2,
		Clock:    clock.NewScaled(time.Now(), 200000),
		EventLog: hyperdrive.NewEventLog(f),
		Seed:     5,
	})
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", path}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	quietStdout(t)
	if err := run(nil); err == nil {
		t.Fatal("accepted missing -in")
	}
	if err := run([]string{"-in", "/nonexistent"}); err == nil {
		t.Fatal("accepted missing file")
	}
	empty := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", empty}); err == nil {
		t.Fatal("accepted empty log")
	}
	bad := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(bad, []byte("{not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", bad}); err == nil {
		t.Fatal("accepted malformed record")
	}
}
