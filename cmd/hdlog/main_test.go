package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/hyperdrive-ml/hyperdrive"
	"github.com/hyperdrive-ml/hyperdrive/internal/clock"
	"github.com/hyperdrive-ml/hyperdrive/internal/cluster"
	"github.com/hyperdrive-ml/hyperdrive/internal/obs"
)

func quietStdout(t *testing.T) {
	t.Helper()
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	t.Cleanup(func() { os.Stdout = old; devnull.Close() })
}

func TestSummarizeRealLog(t *testing.T) {
	quietStdout(t)
	path := filepath.Join(t.TempDir(), "run.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	_, err = hyperdrive.RunExperiment(context.Background(), hyperdrive.ExperimentConfig{
		Workload: "cifar10",
		Policy:   "default",
		Machines: 2,
		MaxJobs:  2,
		Clock:    clock.NewScaled(time.Now(), 200000),
		EventLog: hyperdrive.NewEventLog(f),
		Seed:     5,
	})
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", path}); err != nil {
		t.Fatal(err)
	}
}

// TestTraceConversion feeds a synthetic log covering every record kind
// (including the fault-tolerance ones) through -trace and checks the
// output is a valid Chrome trace carrying the expected tracks.
func TestTraceConversion(t *testing.T) {
	quietStdout(t)
	dir := t.TempDir()
	logPath := filepath.Join(dir, "run.jsonl")
	tracePath := filepath.Join(dir, "run.trace.json")
	base := time.Date(2017, 12, 11, 0, 0, 0, 0, time.UTC)
	recs := []cluster.LogRecord{
		{T: base, Kind: "start", Job: "job-000", Slot: "a1/slot-0"},
		{T: base.Add(1 * time.Minute), Kind: "stat", Job: "job-000", Epoch: 1, Metric: 0.4},
		{T: base.Add(1 * time.Minute), Kind: "decision", Job: "job-000", Epoch: 1, Decision: "suspend", Span: "00000001"},
		{T: base.Add(1 * time.Minute), Kind: "suspended", Job: "job-000", Slot: "a1/slot-0"},
		{T: base.Add(2 * time.Minute), Kind: "resume", Job: "job-000", Slot: "a1/slot-0"},
		{T: base.Add(3 * time.Minute), Kind: "agent_error", Agent: "a1", Detail: "read tcp: reset"},
		{T: base.Add(3 * time.Minute), Kind: "agent_down", Agent: "a1"},
		{T: base.Add(3 * time.Minute), Kind: "lost", Job: "job-000", Slot: "a1/slot-0"},
		{T: base.Add(4 * time.Minute), Kind: "replace", Job: "job-000", Slot: "a1/slot-0"},
		{T: base.Add(4 * time.Minute), Kind: "resume", Job: "job-000", Slot: "a2/slot-0"},
		{T: base.Add(5 * time.Minute), Kind: "agent_up", Agent: "a1"},
		{T: base.Add(6 * time.Minute), Kind: "completed", Job: "job-000", Slot: "a2/slot-0"},
		{T: base.Add(6 * time.Minute), Kind: "stop", Detail: "target reached"},
	}
	f, err := os.Create(logPath)
	if err != nil {
		t.Fatal(err)
	}
	enc := json.NewEncoder(f)
	for _, rec := range recs {
		if err := enc.Encode(rec); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()
	if err := run([]string{"-in", logPath, "-trace", tracePath}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateTraceEvents(data); err != nil {
		t.Fatalf("converted trace invalid: %v\n%s", err, data)
	}
	for _, want := range []string{
		`"scheduler"`, `"job job-000"`, `"agent a1"`, `"decisions"`,
		`"re-placed"`, `"agent down"`, `"agent reconnected"`, `"decision job-000"`,
		`"start on a1/slot-0"`, `"resume on a2/slot-0"`,
	} {
		if !bytes.Contains(data, []byte(want)) {
			t.Fatalf("converted trace missing %s:\n%s", want, data)
		}
	}
	// The -check-trace mode accepts the file it just wrote...
	if err := run([]string{"-check-trace", tracePath}); err != nil {
		t.Fatal(err)
	}
	// ...and rejects garbage.
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"traceEvents":[{"ph":"E","pid":1,"tid":1,"name":"x"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-check-trace", bad}); err == nil {
		t.Fatal("-check-trace accepted an unbalanced trace")
	}
}

func TestRunErrors(t *testing.T) {
	quietStdout(t)
	if err := run(nil); err == nil {
		t.Fatal("accepted missing -in")
	}
	if err := run([]string{"-in", "/nonexistent"}); err == nil {
		t.Fatal("accepted missing file")
	}
	empty := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", empty}); err == nil {
		t.Fatal("accepted empty log")
	}
	bad := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(bad, []byte("{not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", bad}); err == nil {
		t.Fatal("accepted malformed record")
	}
}
