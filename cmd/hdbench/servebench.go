package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hyperdrive-ml/hyperdrive/internal/checkpoint"
	"github.com/hyperdrive-ml/hyperdrive/internal/clock"
	"github.com/hyperdrive-ml/hyperdrive/internal/cluster"
	"github.com/hyperdrive-ml/hyperdrive/internal/obs"
	"github.com/hyperdrive-ml/hyperdrive/internal/serve"
	"github.com/hyperdrive-ml/hyperdrive/internal/workload"
)

// serveLatencyReport is the submit→first-decision half of
// BENCH_serve.json: how long a tenant waits between POSTing an
// experiment and the scheduler's first recorded decision for it, over
// the full HTTP path (admission, broker lease, experiment boot, slot
// reservation, first training epoch, decision event).
type serveLatencyReport struct {
	Experiments int     `json:"experiments"`
	SlotsTotal  int     `json:"slots_total"`
	MaxJobsEach int     `json:"max_jobs_each"`
	Samples     int64   `json:"samples"`
	P50MS       float64 `json:"p50_ms"`
	P99MS       float64 `json:"p99_ms"`
	WallMS      float64 `json:"wall_ms"`
}

// serveRateReport is the throughput-under-rate-limit half: a client
// pool hammers the API as one tenant and the token bucket must hold
// the accepted rate near the configured refill while 429s carry a
// Retry-After hint.
type serveRateReport struct {
	RatePerSec     float64 `json:"rate_per_sec"`
	Clients        int     `json:"clients"`
	WallMS         float64 `json:"wall_ms"`
	Accepted       int64   `json:"accepted"`
	Rejected       int64   `json:"rejected"`
	AcceptedPerSec float64 `json:"accepted_per_sec"`
	RetryAfterOK   bool    `json:"retry_after_ok"`
	Pass           bool    `json:"pass"`
}

// serveBenchReport is the BENCH_serve.json schema.
type serveBenchReport struct {
	Scale   string             `json:"scale"`
	Latency serveLatencyReport `json:"latency"`
	Rate    serveRateReport    `json:"rate"`
	Pass    bool               `json:"pass"`
}

// bootServeBench starts an in-process hyperdrived (worker-pool
// executor, loopback HTTP) and returns its base URL, registry, and a
// shutdown func.
func bootServeBench(slots, maxExps int, rate float64, seed int64) (string, *obs.Registry, func(), error) {
	clk := clock.NewScaled(time.Date(2017, 12, 11, 0, 0, 0, 0, time.UTC), 200000)
	events := make(chan cluster.Event, 4096)
	wreg := workload.NewRegistry()
	reg := obs.NewRegistry()
	capturer, err := checkpoint.NewCapturer(checkpoint.Framework, seed+1)
	if err != nil {
		return "", nil, nil, err
	}
	pool, err := cluster.NewWorkerPool(slots, wreg, clk, capturer, events)
	if err != nil {
		return "", nil, nil, err
	}
	srv, err := serve.NewServer(serve.Options{
		Executor:       pool,
		Events:         events,
		Clock:          clk,
		Registry:       wreg,
		MaxExperiments: maxExps,
		Rate:           rate,
		Obs:            reg,
	})
	if err != nil {
		pool.Close()
		return "", nil, nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		pool.Close()
		return "", nil, nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	shutdown := func() {
		hs.Close()
		ln.Close()
		srv.Close()
		pool.Close()
	}
	return "http://" + ln.Addr().String(), reg, shutdown, nil
}

// runServeLatency submits experiments over HTTP, polls them to
// completion, and reads the submit→first-decision histogram the
// server maintains.
func runServeLatency(experiments, slots, maxJobs int, seed int64) (serveLatencyReport, error) {
	rep := serveLatencyReport{Experiments: experiments, SlotsTotal: slots, MaxJobsEach: maxJobs}
	// Rate limiting is the other phase's subject; stay far from it here.
	base, reg, shutdown, err := bootServeBench(slots, experiments, 1e6, seed)
	if err != nil {
		return rep, err
	}
	defer shutdown()
	client := &http.Client{Timeout: 30 * time.Second}

	t0 := time.Now()
	ids := make([]string, 0, experiments)
	for i := 0; i < experiments; i++ {
		body := fmt.Sprintf(`{"tenant":"t%d","workload":"cifar10","maxJobs":%d,"seed":%d}`, i, maxJobs, seed+int64(i))
		resp, err := client.Post(base+"/v1/experiments", "application/json", strings.NewReader(body))
		if err != nil {
			return rep, err
		}
		var out struct {
			ID string `json:"id"`
		}
		jerr := json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			return rep, fmt.Errorf("submit %d: HTTP %d", i, resp.StatusCode)
		}
		if jerr != nil {
			return rep, jerr
		}
		ids = append(ids, out.ID)
	}

	deadline := time.Now().Add(180 * time.Second)
	for _, id := range ids {
		for {
			if time.Now().After(deadline) {
				return rep, fmt.Errorf("%s did not finish in time", id)
			}
			resp, err := client.Get(base + "/v1/experiments/" + id)
			if err != nil {
				return rep, err
			}
			var st struct {
				State string `json:"state"`
				Error string `json:"error"`
			}
			jerr := json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if jerr != nil {
				return rep, jerr
			}
			if st.State == "done" {
				break
			}
			if st.State == "failed" || st.State == "canceled" {
				return rep, fmt.Errorf("%s ended %s: %s", id, st.State, st.Error)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	rep.WallMS = time.Since(t0).Seconds() * 1e3

	h := reg.Histogram(obs.ServeSubmitToDecisionSeconds)
	rep.Samples = h.Count()
	rep.P50MS = h.Quantile(0.5) * 1e3
	rep.P99MS = h.Quantile(0.99) * 1e3
	return rep, nil
}

// runServeRate hammers a fresh server's list endpoint as one tenant
// and checks the token bucket: sustained acceptance near the refill
// rate, the rest bounced as 429 with a Retry-After hint.
func runServeRate(rate float64, clients int, wall time.Duration, seed int64) (serveRateReport, error) {
	rep := serveRateReport{RatePerSec: rate, Clients: clients}
	base, _, shutdown, err := bootServeBench(2, 1, rate, seed)
	if err != nil {
		return rep, err
	}
	defer shutdown()

	var accepted, rejected, retryOK, other atomic.Int64
	var wg sync.WaitGroup
	t0 := time.Now()
	stop := t0.Add(wall)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{Timeout: 10 * time.Second}
			for time.Now().Before(stop) {
				req, err := http.NewRequest(http.MethodGet, base+"/v1/experiments", nil)
				if err != nil {
					other.Add(1)
					return
				}
				req.Header.Set("X-Tenant", "hammer")
				resp, err := client.Do(req)
				if err != nil {
					other.Add(1)
					continue
				}
				switch resp.StatusCode {
				case http.StatusOK:
					accepted.Add(1)
				case http.StatusTooManyRequests:
					rejected.Add(1)
					if resp.Header.Get("Retry-After") != "" {
						retryOK.Add(1)
					}
				default:
					other.Add(1)
				}
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(t0)

	rep.WallMS = elapsed.Seconds() * 1e3
	rep.Accepted = accepted.Load()
	rep.Rejected = rejected.Load()
	if elapsed > 0 {
		rep.AcceptedPerSec = float64(rep.Accepted) / elapsed.Seconds()
	}
	rep.RetryAfterOK = rep.Rejected > 0 && retryOK.Load() == rep.Rejected
	// The bucket admits burst (≈rate) up front plus refill for the
	// window; anything past 2x that means the limiter leaks.
	limit := rate * (elapsed.Seconds() + 1) * 2
	rep.Pass = rep.Rejected > 0 && rep.RetryAfterOK && float64(rep.Accepted) <= limit && other.Load() == 0
	return rep, nil
}

// runServeBench measures the multi-tenant service path and writes
// BENCH_serve.json: submit→first-decision latency over the full HTTP
// stack, and API throughput under the per-tenant rate limit.
func runServeBench(path, scale string, seed int64) error {
	rep := serveBenchReport{Scale: scale}
	var err error
	switch scale {
	case "paper":
		rep.Latency, err = runServeLatency(12, 32, 8, seed)
	case "fast":
		rep.Latency, err = runServeLatency(4, 8, 4, seed)
	default:
		return fmt.Errorf("unknown -serve-scale %q (want paper or fast)", scale)
	}
	if err != nil {
		return err
	}
	if rep.Latency.Samples != int64(rep.Latency.Experiments) {
		return fmt.Errorf("submit→decision histogram has %d samples, want %d", rep.Latency.Samples, rep.Latency.Experiments)
	}

	if scale == "paper" {
		rep.Rate, err = runServeRate(300, 4, time.Second, seed)
	} else {
		rep.Rate, err = runServeRate(100, 2, 500*time.Millisecond, seed)
	}
	if err != nil {
		return err
	}
	rep.Pass = rep.Rate.Pass

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	fmt.Printf("submit→first-decision over HTTP, %d experiments on %d slots: p50 %.1fms p99 %.1fms (%d samples, wall %.0fms)\n",
		rep.Latency.Experiments, rep.Latency.SlotsTotal, rep.Latency.P50MS, rep.Latency.P99MS, rep.Latency.Samples, rep.Latency.WallMS)
	fmt.Printf("api under %g req/s tenant limit, %d clients: %d accepted (%.0f/s), %d rejected with Retry-After, pass=%v\n",
		rep.Rate.RatePerSec, rep.Rate.Clients, rep.Rate.Accepted, rep.Rate.AcceptedPerSec, rep.Rate.Rejected, rep.Rate.Pass)
	fmt.Printf("report written to %s\n", path)
	if !rep.Pass {
		return fmt.Errorf("serve bench gate failed: rate limiter did not hold (accepted %d, rejected %d)", rep.Rate.Accepted, rep.Rate.Rejected)
	}
	return nil
}
