package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	hyperdrive "github.com/hyperdrive-ml/hyperdrive"
)

// traceArm is one measured configuration of the tracing stack.
type traceArm struct {
	Name string  `json:"name"`
	MS   float64 `json:"ms"` // min over reps
}

// traceScenario measures one workload across the three tracing arms:
// "off" (no registry, no sink — every hook on its nil no-op path),
// "flight" (registry + flight recorder, export disabled — the default
// production configuration), and "export" (full Chrome trace
// accumulation plus the final serialization).
type traceScenario struct {
	Policy     string     `json:"policy"`
	Jobs       int        `json:"jobs"`
	Machines   int        `json:"machines"`
	Reps       int        `json:"reps"`
	RunsPerRep int        `json:"runs_per_rep"`
	Arms       []traceArm `json:"arms"`
}

func (s *traceScenario) arm(name string) float64 {
	for _, a := range s.Arms {
		if a.Name == name {
			return a.MS
		}
	}
	return 0
}

// traceBenchReport is the BENCH_trace.json schema. The gated number is
// the cost of running with tracing available but export disabled (the
// "flight" arm) relative to the fully-off path: what every user pays
// after this feature ships, whether or not they ever pass -trace-out.
type traceBenchReport struct {
	POP               traceScenario `json:"pop"`
	Stress            traceScenario `json:"stress_default"`
	DisabledPct       float64       `json:"disabled_overhead_pct"` // POP flight vs off
	ExportPct         float64       `json:"export_overhead_pct"`   // POP export vs off
	StressDisabledPct float64       `json:"stress_disabled_overhead_pct"`
	ThresholdPct      float64       `json:"threshold_pct"`
	Pass              bool          `json:"pass"`
}

// measureTraceScenario times RunSimulation under the three arms,
// cycling arm order every rep so machine drift hits all arms equally;
// each arm reports its minimum (noise only adds time).
func measureTraceScenario(tr *hyperdrive.Trace, pol string, machines, reps, runsPerRep int) (traceScenario, error) {
	sc := traceScenario{
		Policy:     pol,
		Jobs:       len(tr.Jobs),
		Machines:   machines,
		Reps:       reps,
		RunsPerRep: runsPerRep,
	}
	sharedReg := hyperdrive.NewObsRegistry()
	arms := []string{"off", "flight", "export"}
	run := func(arm string) (time.Duration, error) {
		runtime.GC()
		t0 := time.Now()
		for i := 0; i < runsPerRep; i++ {
			cfg := hyperdrive.SimConfig{Trace: tr, Policy: pol, Machines: machines}
			var sink *hyperdrive.TraceWriter
			switch arm {
			case "flight":
				cfg.Obs = sharedReg
			case "export":
				cfg.Obs = sharedReg
				sink = hyperdrive.NewTraceWriter()
				cfg.TraceSink = sink
			}
			if _, err := hyperdrive.RunSimulation(cfg); err != nil {
				return 0, err
			}
			if sink != nil {
				// Serialization is part of what -trace-out costs.
				if err := sink.Export(io.Discard); err != nil {
					return 0, err
				}
			}
		}
		return time.Since(t0), nil
	}

	times := make(map[string][]float64, len(arms))
	for _, a := range arms { // warm every arm before measuring
		if _, err := run(a); err != nil {
			return sc, err
		}
	}
	for i := 0; i < reps; i++ {
		for j := range arms {
			a := arms[(i+j)%len(arms)] // rotate order so drift cancels
			d, err := run(a)
			if err != nil {
				return sc, err
			}
			times[a] = append(times[a], d.Seconds()*1e3)
		}
	}
	for _, a := range arms {
		sc.Arms = append(sc.Arms, traceArm{Name: a, MS: minOf(times[a])})
	}
	return sc, nil
}

// runTraceBench measures the tracing stack's overhead on the simulator
// hot path and writes BENCH_trace.json.
func runTraceBench(path string, seed int64) error {
	tr, err := hyperdrive.CollectTrace("cifar10", 192, seed)
	if err != nil {
		return err
	}

	// Realistic scenario: POP, where MCMC fitting dominates.
	popTrace := &hyperdrive.Trace{}
	*popTrace = *tr
	popTrace.Jobs = tr.Jobs[:48]
	pop, err := measureTraceScenario(popTrace, "pop", 8, 5, 1)
	if err != nil {
		return err
	}
	// Stress scenario: the empty Default policy bounds per-epoch hook
	// cost from above.
	stress, err := measureTraceScenario(tr, "default", 8, 15, 6)
	if err != nil {
		return err
	}

	pct := func(sc *traceScenario, arm string) float64 {
		off := sc.arm("off")
		if off == 0 {
			return 0
		}
		return (sc.arm(arm) - off) / off * 100
	}
	rep := traceBenchReport{
		POP:               pop,
		Stress:            stress,
		DisabledPct:       pct(&pop, "flight"),
		ExportPct:         pct(&pop, "export"),
		StressDisabledPct: pct(&stress, "flight"),
		ThresholdPct:      3,
	}
	rep.Pass = rep.DisabledPct < rep.ThresholdPct

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	fmt.Printf("trace overhead, pop (gated): off %.2fms, flight %.2fms (%+.2f%%), export %.2fms (%+.2f%%) — threshold %g%%, pass=%v\n",
		pop.arm("off"), pop.arm("flight"), rep.DisabledPct, pop.arm("export"), rep.ExportPct, rep.ThresholdPct, rep.Pass)
	fmt.Printf("trace overhead, default-policy stress: off %.2fms, flight %.2fms (%+.2f%%), export %.2fms\n",
		stress.arm("off"), stress.arm("flight"), rep.StressDisabledPct, stress.arm("export"))
	fmt.Printf("report written to %s\n", path)
	if !rep.Pass {
		return fmt.Errorf("tracing disabled-path overhead %.2f%% exceeds %g%%", rep.DisabledPct, rep.ThresholdPct)
	}
	return nil
}
