// Command hdbench regenerates the paper's tables and figures (every
// figure of §2, §6, and §7 plus the DESIGN.md ablations), printing
// each as a text table and writing CSV series to -out.
//
//	hdbench                    # all figures, reduced scale
//	hdbench -scale full        # paper-scale populations (slow)
//	hdbench -fig fig7,fig9     # selected figures
//	hdbench -list              # list figure IDs
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/hyperdrive-ml/hyperdrive/internal/figures"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hdbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hdbench", flag.ContinueOnError)
	var (
		fig   = fs.String("fig", "", "comma-separated figure IDs (default: all)")
		scale = fs.String("scale", "fast", "experiment scale: fast | full")
		seed  = fs.Int64("seed", 1, "configuration sampling seed")
		out   = fs.String("out", "results", "CSV output directory (empty to disable)")
		list  = fs.Bool("list", false, "list figure IDs and exit")
		obsJS = fs.String("obs-bench", "", "measure obs-registry overhead on the simulator hot path and write the report to this file (e.g. BENCH_obs.json)")
		fitJS = fs.String("fit-bench", "", "measure serial-vs-parallel MCMC fit latency and batch-sweep speedup and write the report to this file (e.g. BENCH_fit.json)")
		fitSc = fs.String("fit-scale", "paper", "-fit-bench MCMC budget: paper (100x700) | fast (smoke)")
		trcJS = fs.String("trace-bench", "", "measure trace/flight-recorder overhead on the simulator hot path and write the report to this file (e.g. BENCH_trace.json)")
		qltJS = fs.String("quality-bench", "", "measure quality-audit overhead on the simulator hot path and write the report to this file (e.g. BENCH_quality.json)")
		schJS = fs.String("sched-bench", "", "measure scheduler-core throughput (sharded vs single-lock slot pool, e2e decision latency over sockets) and write the report to this file (e.g. BENCH_sched.json)")
		schSc = fs.String("sched-scale", "paper", "-sched-bench fleet size: paper (1k agents, 16k slots) | fast (smoke)")
		srvJS = fs.String("serve-bench", "", "measure the multi-tenant service path (submit→first-decision latency over HTTP, API throughput under the per-tenant rate limit) and write the report to this file (e.g. BENCH_serve.json)")
		srvSc = fs.String("serve-scale", "paper", "-serve-bench scale: paper | fast (smoke)")
		fltJS = fs.String("fleet-bench", "", "measure the fleet observability layer's disabled-path overhead (broker lease churn, API request path) and write the report to this file (e.g. BENCH_fleet.json)")
		fltSc = fs.String("fleet-scale", "paper", "-fleet-bench scale: paper | fast (smoke)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *obsJS != "" {
		return runObsBench(*obsJS, *seed)
	}
	if *schJS != "" {
		return runSchedBench(*schJS, *schSc, *seed)
	}
	if *srvJS != "" {
		return runServeBench(*srvJS, *srvSc, *seed)
	}
	if *fltJS != "" {
		return runFleetBench(*fltJS, *fltSc, *seed)
	}
	if *trcJS != "" {
		return runTraceBench(*trcJS, *seed)
	}
	if *qltJS != "" {
		return runQualityBench(*qltJS, *seed)
	}
	if *fitJS != "" {
		return runFitBench(*fitJS, *fitSc, *seed)
	}
	if *list {
		for _, id := range figures.IDs() {
			fmt.Printf("%-18s %s\n", id, figures.Describe(id))
		}
		return nil
	}

	ids := figures.IDs()
	if *fig != "" {
		ids = strings.Split(*fig, ",")
	}
	opts := figures.Options{Scale: *scale, Seed: *seed, OutDir: *out}
	for _, id := range ids {
		start := time.Now()
		rep, err := figures.Run(strings.TrimSpace(id), opts)
		if err != nil {
			return err
		}
		rep.Print(os.Stdout)
		fmt.Printf("(%s regenerated in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	if *out != "" {
		fmt.Printf("CSV series written to %s/\n", *out)
	}
	return nil
}
