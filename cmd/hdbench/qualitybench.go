package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	hyperdrive "github.com/hyperdrive-ml/hyperdrive"
)

// qualityArm is one measured configuration of the quality audit stack.
type qualityArm struct {
	Name string  `json:"name"`
	MS   float64 `json:"ms"` // min over reps
}

// qualityScenario measures one workload across three arms: "off" (no
// registry at all), "disabled" (registry attached but the quality audit
// not enabled — the default configuration every run ships with), and
// "enabled" (quality audit recording every decision plus the final
// JSONL export).
type qualityScenario struct {
	Policy     string       `json:"policy"`
	Jobs       int          `json:"jobs"`
	Machines   int          `json:"machines"`
	Reps       int          `json:"reps"`
	RunsPerRep int          `json:"runs_per_rep"`
	Arms       []qualityArm `json:"arms"`
}

func (s *qualityScenario) arm(name string) float64 {
	for _, a := range s.Arms {
		if a.Name == name {
			return a.MS
		}
	}
	return 0
}

// qualityBenchReport is the BENCH_quality.json schema. The gated number
// is the "disabled" arm against "off": the cost the audit hooks impose
// on runs that never enable the audit, which is what every user pays
// after this feature ships.
type qualityBenchReport struct {
	POP               qualityScenario `json:"pop"`
	Stress            qualityScenario `json:"stress_default"`
	DisabledPct       float64         `json:"disabled_overhead_pct"` // POP disabled vs off
	EnabledPct        float64         `json:"enabled_overhead_pct"`  // POP enabled vs off
	StressDisabledPct float64         `json:"stress_disabled_overhead_pct"`
	ThresholdPct      float64         `json:"threshold_pct"`
	Pass              bool            `json:"pass"`
}

// measureQualityScenario times RunSimulation under the three arms,
// rotating arm order every rep so machine drift hits all arms equally;
// each arm reports its minimum (noise only adds time).
func measureQualityScenario(tr *hyperdrive.Trace, pol string, machines, reps, runsPerRep int) (qualityScenario, error) {
	sc := qualityScenario{
		Policy:     pol,
		Jobs:       len(tr.Jobs),
		Machines:   machines,
		Reps:       reps,
		RunsPerRep: runsPerRep,
	}
	sharedReg := hyperdrive.NewObsRegistry()
	arms := []string{"off", "disabled", "enabled"}
	run := func(arm string) (time.Duration, error) {
		runtime.GC()
		t0 := time.Now()
		for i := 0; i < runsPerRep; i++ {
			cfg := hyperdrive.SimConfig{Trace: tr, Policy: pol, Machines: machines}
			var qual *hyperdrive.QualityAudit
			switch arm {
			case "disabled":
				cfg.Obs = sharedReg // registry live, audit never enabled
			case "enabled":
				cfg.Obs = sharedReg
				qual = hyperdrive.NewQualityAudit(hyperdrive.QualityMeta{})
				cfg.Quality = qual
			}
			if _, err := hyperdrive.RunSimulation(cfg); err != nil {
				return 0, err
			}
			if qual != nil {
				// Serialization is part of what -quality-out costs.
				if err := qual.WriteLog(io.Discard); err != nil {
					return 0, err
				}
			}
		}
		return time.Since(t0), nil
	}

	times := make(map[string][]float64, len(arms))
	for _, a := range arms { // warm every arm before measuring
		if _, err := run(a); err != nil {
			return sc, err
		}
	}
	for i := 0; i < reps; i++ {
		for j := range arms {
			a := arms[(i+j)%len(arms)] // rotate order so drift cancels
			d, err := run(a)
			if err != nil {
				return sc, err
			}
			times[a] = append(times[a], d.Seconds()*1e3)
		}
	}
	for _, a := range arms {
		sc.Arms = append(sc.Arms, qualityArm{Name: a, MS: minOf(times[a])})
	}
	return sc, nil
}

// runQualityBench measures the quality audit's overhead on the
// simulator hot path and writes BENCH_quality.json.
func runQualityBench(path string, seed int64) error {
	tr, err := hyperdrive.CollectTrace("cifar10", 192, seed)
	if err != nil {
		return err
	}

	// Realistic scenario: POP, where the audit sees a real prediction
	// on every decision span.
	popTrace := &hyperdrive.Trace{}
	*popTrace = *tr
	popTrace.Jobs = tr.Jobs[:48]
	pop, err := measureQualityScenario(popTrace, "pop", 8, 5, 1)
	if err != nil {
		return err
	}
	// Stress scenario: the empty Default policy bounds per-epoch hook
	// cost from above.
	stress, err := measureQualityScenario(tr, "default", 8, 15, 6)
	if err != nil {
		return err
	}

	pct := func(sc *qualityScenario, arm string) float64 {
		off := sc.arm("off")
		if off == 0 {
			return 0
		}
		return (sc.arm(arm) - off) / off * 100
	}
	rep := qualityBenchReport{
		POP:               pop,
		Stress:            stress,
		DisabledPct:       pct(&pop, "disabled"),
		EnabledPct:        pct(&pop, "enabled"),
		StressDisabledPct: pct(&stress, "disabled"),
		ThresholdPct:      3,
	}
	rep.Pass = rep.DisabledPct < rep.ThresholdPct

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	fmt.Printf("quality overhead, pop (gated): off %.2fms, disabled %.2fms (%+.2f%%), enabled %.2fms (%+.2f%%) — threshold %g%%, pass=%v\n",
		pop.arm("off"), pop.arm("disabled"), rep.DisabledPct, pop.arm("enabled"), rep.EnabledPct, rep.ThresholdPct, rep.Pass)
	fmt.Printf("quality overhead, default-policy stress: off %.2fms, disabled %.2fms (%+.2f%%), enabled %.2fms\n",
		stress.arm("off"), stress.arm("disabled"), rep.StressDisabledPct, stress.arm("enabled"))
	fmt.Printf("report written to %s\n", path)
	if !rep.Pass {
		return fmt.Errorf("quality audit disabled-path overhead %.2f%% exceeds %g%%", rep.DisabledPct, rep.ThresholdPct)
	}
	return nil
}
