package main

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"time"

	"github.com/hyperdrive-ml/hyperdrive/internal/core"
	"github.com/hyperdrive-ml/hyperdrive/internal/curve"
	"github.com/hyperdrive-ml/hyperdrive/internal/obs"
)

// fitArm is one measured MCMC-fit configuration in BENCH_fit.json.
type fitArm struct {
	Workers int     `json:"workers"`
	MinMS   float64 `json:"min_ms"` // min over reps
	Reps    int     `json:"reps"`
}

// fitBenchReport is the BENCH_fit.json schema: the measured latency of
// the prediction hot path (§5.2 cut the MCMC budget 2500 -> 700 purely
// for this latency). Fit speedup compares the serial sampler against
// the half-ensemble worker pool; sweep speedup compares one boundary's
// ERT estimate issued as per-epoch ProbAtLeast calls against the
// sample-major ProbSweep batch. Both arms are bit-identical in output
// (Deterministic records the cross-check), so the ratios are pure
// latency. The >= 2x fit gate only binds on hosts with >= 4 cores:
// below that the pool has nothing to fan out over.
type fitBenchReport struct {
	Config        string  `json:"config"` // "paper" | "fast"
	Cores         int     `json:"cores"`
	Observations  int     `json:"observations"`
	Horizon       int     `json:"horizon"`
	Serial        fitArm  `json:"serial"`
	Parallel      fitArm  `json:"parallel"`
	FitSpeedup    float64 `json:"fit_speedup"`
	SweepEpochs   int     `json:"sweep_epochs"`
	PerQueryMS    float64 `json:"per_query_ms"`
	BatchMS       float64 `json:"batch_ms"`
	SweepSpeedup  float64 `json:"sweep_speedup"`
	Deterministic bool    `json:"deterministic"`
	ThresholdX    float64 `json:"threshold_x"`
	Gated         bool    `json:"gated"` // cores >= 4: the threshold binds
	Pass          bool    `json:"pass"`
}

// fitBenchCurve generates the measured workload: a noisy rising
// prefix, the shape every boundary estimate fits.
func fitBenchCurve(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	y := make([]float64, n)
	for i := range y {
		x := float64(i + 1)
		y[i] = 0.1 + 0.65*(1-math.Exp(-0.04*x)) + 0.008*rng.NormFloat64()
	}
	return y
}

// measureFit times reps fits at the given worker count and returns the
// minimum (co-tenant noise only adds time) plus the last posterior for
// cross-arm determinism checks.
func measureFit(cfg curve.Config, y []float64, horizon int, seed int64, reps int) (fitArm, *curve.Posterior, error) {
	arm := fitArm{Workers: cfg.Workers, Reps: reps}
	pred, err := curve.NewPredictor(cfg)
	if err != nil {
		return arm, nil, err
	}
	var post *curve.Posterior
	if post, err = pred.Fit(y, horizon, seed); err != nil { // warm-up
		return arm, nil, err
	}
	best := math.Inf(1)
	for r := 0; r < reps; r++ {
		t0 := time.Now()
		post, err = pred.Fit(y, horizon, seed)
		d := time.Since(t0)
		if err != nil {
			return arm, nil, err
		}
		if ms := d.Seconds() * 1e3; ms < best {
			best = ms
		}
	}
	arm.MinMS = best
	return arm, post, nil
}

// runFitBench measures serial-vs-parallel fit latency and per-query vs
// batch sweep latency, writes the report to path, and mirrors the
// headline numbers onto the obs registry metrics
// (hyperdrive_mcmc_parallel_workers, hyperdrive_mcmc_fit_speedup).
func runFitBench(path, scale string, seed int64) error {
	cfg := curve.PaperConfig()
	reps := 5
	if scale == "fast" {
		cfg = curve.FastConfig()
		reps = 3
	} else if scale != "paper" {
		return fmt.Errorf("unknown -fit-scale %q (want fast | paper)", scale)
	}

	const nObs, horizon = 30, 120
	y := fitBenchCurve(nObs, seed)

	serialCfg := cfg
	serialCfg.Workers = 1
	parallelCfg := cfg
	parallelCfg.Workers = runtime.NumCPU()

	serial, serialPost, err := measureFit(serialCfg, y, horizon, seed, reps)
	if err != nil {
		return err
	}
	parallel, parallelPost, err := measureFit(parallelCfg, y, horizon, seed, reps)
	if err != nil {
		return err
	}

	rep := fitBenchReport{
		Config:       scale,
		Cores:        runtime.NumCPU(),
		Observations: nObs,
		Horizon:      horizon,
		Serial:       serial,
		Parallel:     parallel,
		FitSpeedup:   serial.MinMS / parallel.MinMS,
		ThresholdX:   2,
	}

	// Determinism cross-check: both arms must hold byte-identical
	// posteriors (the tentpole's core guarantee).
	rep.Deterministic = postsEqual(serialPost, parallelPost)

	// Sweep benchmark: one boundary's full §3.1.1 estimate, issued the
	// old way (one posterior pass per epoch) and the batch way (one
	// sample-major sweep). Typical boundary: 30 epochs observed, target
	// not yet met, generous budget so the sum runs the whole horizon.
	const target = 0.72
	curEpoch := nObs
	epochDur := time.Minute
	remaining := time.Duration(horizon) * time.Hour
	rep.SweepEpochs = horizon - curEpoch
	sweepReps := 20 * reps
	perQuery := func() core.Estimate {
		return core.EstimateERT("j", func(m int) float64 { return serialPost.ProbAtLeast(m, target) },
			curEpoch, horizon, epochDur, remaining)
	}
	batch := func() core.Estimate {
		return core.EstimateERTBatch("j", func(from, to int) []float64 { return serialPost.ProbSweep(from, to, target) },
			curEpoch, horizon, epochDur, remaining)
	}
	if a, b := perQuery(), batch(); a != b {
		return fmt.Errorf("batch estimate %+v diverged from per-query estimate %+v", b, a)
	}
	rep.PerQueryMS = minTimeMS(perQuery, sweepReps)
	rep.BatchMS = minTimeMS(batch, sweepReps)
	rep.SweepSpeedup = rep.PerQueryMS / rep.BatchMS

	rep.Gated = rep.Cores >= 4
	rep.Pass = rep.Deterministic && (!rep.Gated || rep.FitSpeedup >= rep.ThresholdX)

	// Mirror onto the canonical metrics so a scraped hdbench process
	// reports the same numbers the JSON records.
	reg := obs.NewRegistry()
	reg.Gauge(obs.MCMCParallelWorkers).Set(float64(parallel.Workers))
	reg.Gauge(obs.MCMCFitSpeedup).Set(rep.FitSpeedup)

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	fmt.Printf("mcmc fit (%s, %d obs): serial %.1fms, parallel[%d workers] %.1fms, speedup %.2fx (gate %gx on >=4 cores; %d cores, deterministic=%v)\n",
		scale, nObs, serial.MinMS, parallel.Workers, parallel.MinMS, rep.FitSpeedup, rep.ThresholdX, rep.Cores, rep.Deterministic)
	fmt.Printf("ert sweep (%d epochs): per-query %.2fms, batch %.2fms, speedup %.2fx\n",
		rep.SweepEpochs, rep.PerQueryMS, rep.BatchMS, rep.SweepSpeedup)
	fmt.Printf("report written to %s\n", path)
	if !rep.Pass {
		return fmt.Errorf("fit bench failed: speedup %.2fx below %gx on %d cores (deterministic=%v)",
			rep.FitSpeedup, rep.ThresholdX, rep.Cores, rep.Deterministic)
	}
	return nil
}

// minTimeMS times reps invocations of f and returns the minimum in ms.
func minTimeMS(f func() core.Estimate, reps int) float64 {
	f() // warm-up
	best := math.Inf(1)
	for r := 0; r < reps; r++ {
		t0 := time.Now()
		f()
		if ms := time.Since(t0).Seconds() * 1e3; ms < best {
			best = ms
		}
	}
	return best
}

// postsEqual compares two posteriors' derived surfaces bit-for-bit
// (Float64bits, not tolerance: the determinism guarantee is exact
// equality); with the deterministic sampler any divergence means the
// worker fan-out changed results.
func postsEqual(a, b *curve.Posterior) bool {
	if a.NumSamples() != b.NumSamples() {
		return false
	}
	if math.Float64bits(a.AcceptRate()) != math.Float64bits(b.AcceptRate()) {
		return false
	}
	pa := a.ProbSweep(1, 120, 0.72)
	pb := b.ProbSweep(1, 120, 0.72)
	for k := range pa {
		if math.Float64bits(pa[k]) != math.Float64bits(pb[k]) {
			return false
		}
	}
	return true
}
