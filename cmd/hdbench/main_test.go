package main

import (
	"os"
	"testing"
)

func quietStdout(t *testing.T) {
	t.Helper()
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	t.Cleanup(func() { os.Stdout = old; devnull.Close() })
}

func TestList(t *testing.T) {
	quietStdout(t)
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestSingleCheapFigure(t *testing.T) {
	quietStdout(t)
	if err := run([]string{"-fig", "fig2a", "-out", t.TempDir()}); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownFigure(t *testing.T) {
	quietStdout(t)
	if err := run([]string{"-fig", "nope", "-out", ""}); err == nil {
		t.Fatal("accepted unknown figure")
	}
}
