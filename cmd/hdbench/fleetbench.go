package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"time"

	"github.com/hyperdrive-ml/hyperdrive/internal/checkpoint"
	"github.com/hyperdrive-ml/hyperdrive/internal/clock"
	"github.com/hyperdrive-ml/hyperdrive/internal/cluster"
	"github.com/hyperdrive-ml/hyperdrive/internal/obs"
	"github.com/hyperdrive-ml/hyperdrive/internal/serve"
	"github.com/hyperdrive-ml/hyperdrive/internal/workload"
)

// fleetArm is one measured workload of the fleet observability bench.
type fleetArm struct {
	Ops            int     `json:"ops"`
	Reps           int     `json:"reps"`
	BaselineMS     float64 `json:"baseline_ms"`     // min over reps, Obs disabled
	InstrumentedMS float64 `json:"instrumented_ms"` // min over reps, Obs enabled
	OverheadPct    float64 `json:"overhead_pct"`
}

// fleetBenchReport is the BENCH_fleet.json schema: the cost of the
// fleet observability layer on its two hot paths. The pass criterion
// is the broker arm — every slot an experiment reserves or releases
// crosses the lease fast path the starvation detector instruments —
// while the API arm (middleware + rollup wiring on the HTTP surface)
// is reported for context.
type fleetBenchReport struct {
	Broker       fleetArm `json:"broker_churn"`
	API          fleetArm `json:"api_requests"`
	OverheadPct  float64  `json:"overhead_pct"` // = broker arm
	ThresholdPct float64  `json:"threshold_pct"`
	Pass         bool     `json:"pass"`
}

// measureFleetArm times one closure pair (Obs disabled / enabled),
// alternating arm order with min-over-reps, like every overhead bench
// since BENCH_obs. The arm reports its own timed window so setup
// (registry and broker construction, server boot) stays outside it —
// that is deployment cost, not hot-path cost.
func measureFleetArm(reps, ops int, arm func(instrumented bool) (time.Duration, error)) (fleetArm, error) {
	fa := fleetArm{Ops: ops, Reps: reps}
	run := func(instrumented bool) (time.Duration, error) {
		runtime.GC()
		return arm(instrumented)
	}
	// Warm both arms before measuring.
	if _, err := run(false); err != nil {
		return fa, err
	}
	if _, err := run(true); err != nil {
		return fa, err
	}
	var baseline, instrumented []float64
	for i := 0; i < reps; i++ {
		var db, di time.Duration
		var err error
		if i%2 == 0 {
			if db, err = run(false); err == nil {
				di, err = run(true)
			}
		} else {
			if di, err = run(true); err == nil {
				db, err = run(false)
			}
		}
		if err != nil {
			return fa, err
		}
		baseline = append(baseline, db.Seconds()*1e3)
		instrumented = append(instrumented, di.Seconds()*1e3)
	}
	fa.BaselineMS = minOf(baseline)
	fa.InstrumentedMS = minOf(instrumented)
	fa.OverheadPct = (fa.InstrumentedMS - fa.BaselineMS) / fa.BaselineMS * 100
	return fa, nil
}

// brokerChurnArm returns the gated workload: tenants cycling slots
// through their leases (reserve to exhaustion, release everything),
// with periodic telemetry samples at the kicker cadence. With Obs
// disabled the broker skips gauge updates, starvation clock reads, and
// Sample entirely — that skip is what the gate verifies.
func brokerChurnArm(slots, tenants, leasesPer, rounds int) func(bool) (time.Duration, error) {
	// Long-lived brokers, as in a real deployment: churn runs against the
	// same pool and leases every rep, only the timed loop is measured.
	type churnArm struct {
		broker *serve.Broker
		leases []*serve.Lease
	}
	build := func(instrumented bool) churnArm {
		ids := make([]cluster.SlotID, slots)
		for i := range ids {
			ids[i] = cluster.SlotID(fmt.Sprintf("m%d:0", i))
		}
		var reg *obs.Registry
		if instrumented {
			reg = obs.NewRegistry()
		}
		b := serve.NewBroker(cluster.NewResourceManager(ids), reg, nil)
		var leases []*serve.Lease
		for t := 0; t < tenants; t++ {
			for l := 0; l < leasesPer; l++ {
				leases = append(leases, b.Join(fmt.Sprintf("tenant%d", t), float64(1+t%3)))
			}
		}
		return churnArm{broker: b, leases: leases}
	}
	arms := map[bool]churnArm{false: build(false), true: build(true)}
	return func(instrumented bool) (time.Duration, error) {
		a := arms[instrumented]
		held := make([][]cluster.SlotID, len(a.leases))
		t0 := time.Now()
		for r := 0; r < rounds; r++ {
			for i, l := range a.leases {
				for {
					s, ok := l.ReserveIdleMachine()
					if !ok {
						break
					}
					held[i] = append(held[i], s)
				}
			}
			for i, l := range a.leases {
				for _, s := range held[i] {
					if err := l.ReleaseMachine(s); err != nil {
						return 0, err
					}
				}
				held[i] = held[i][:0]
			}
			// One telemetry sample per 16 churn rounds approximates the
			// kicker cadence relative to real slot-transition rates; the
			// uninstrumented broker returns immediately.
			if r%16 == 0 {
				a.broker.Sample()
			}
		}
		return time.Since(t0), nil
	}
}

// apiRequestArm returns the informational workload: the full handler
// chain (rate limiter, mux, middleware) driven in-process. With Obs
// disabled the routes are registered unwrapped.
func apiRequestArm(requests int) (func(bool) (time.Duration, error), func(), error) {
	clk := clock.NewScaled(time.Now(), 600)
	build := func(instrumented bool) (*serve.Server, func(), error) {
		events := make(chan cluster.Event, 64)
		wreg := workload.NewRegistry()
		capturer, err := checkpoint.NewCapturer(checkpoint.Framework, 1)
		if err != nil {
			return nil, nil, err
		}
		pool, err := cluster.NewWorkerPool(2, wreg, clk, capturer, events)
		if err != nil {
			return nil, nil, err
		}
		var reg *obs.Registry
		if instrumented {
			reg = obs.NewRegistry()
		}
		srv, err := serve.NewServer(serve.Options{
			Executor: pool, Events: events, Clock: clk, Registry: wreg,
			Rate: 1e9, Obs: reg,
		})
		if err != nil {
			pool.Close()
			return nil, nil, err
		}
		return srv, func() { srv.Close(); pool.Close() }, nil
	}
	// Boot both servers up front; only request serving is timed.
	handlers := map[bool]http.Handler{}
	var shutdowns []func()
	cleanup := func() {
		for _, f := range shutdowns {
			f()
		}
	}
	for _, instrumented := range []bool{false, true} {
		srv, shutdown, err := build(instrumented)
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		shutdowns = append(shutdowns, shutdown)
		handlers[instrumented] = srv.Handler()
	}
	arm := func(instrumented bool) (time.Duration, error) {
		h := handlers[instrumented]
		reqList := httptest.NewRequest("GET", "/v1/experiments", nil)
		reqMiss := httptest.NewRequest("GET", "/v1/experiments/nope", nil)
		t0 := time.Now()
		for i := 0; i < requests; i++ {
			rec := httptest.NewRecorder()
			if i%4 == 3 {
				h.ServeHTTP(rec, reqMiss)
				if rec.Code != http.StatusNotFound {
					return 0, fmt.Errorf("miss: HTTP %d", rec.Code)
				}
			} else {
				h.ServeHTTP(rec, reqList)
				if rec.Code != http.StatusOK {
					return 0, fmt.Errorf("list: HTTP %d", rec.Code)
				}
			}
		}
		return time.Since(t0), nil
	}
	return arm, cleanup, nil
}

// runFleetBench measures the fleet observability layer's disabled-path
// overhead and writes the comparison to path.
func runFleetBench(path, scale string, seed int64) error {
	brokerReps, brokerRounds := 15, 400
	apiReps, apiRequests := 9, 4000
	threshold := 3.0
	switch scale {
	case "paper":
	case "fast":
		// Smoke scale for check.sh: short timed windows, relaxed gate
		// (a few hundred churn rounds are too noisy to resolve 3%).
		brokerReps, brokerRounds = 5, 60
		apiReps, apiRequests = 3, 400
		threshold = 15
	default:
		return fmt.Errorf("unknown -fleet-scale %q (want paper or fast)", scale)
	}

	broker, err := measureFleetArm(brokerReps, brokerRounds, brokerChurnArm(64, 4, 2, brokerRounds))
	if err != nil {
		return err
	}
	apiArm, cleanup, err := apiRequestArm(apiRequests)
	if err != nil {
		return err
	}
	defer cleanup()
	api, err := measureFleetArm(apiReps, apiRequests, apiArm)
	if err != nil {
		return err
	}

	rep := fleetBenchReport{
		Broker:       broker,
		API:          api,
		OverheadPct:  broker.OverheadPct,
		ThresholdPct: threshold,
	}
	rep.Pass = rep.OverheadPct < rep.ThresholdPct

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	fmt.Printf("fleet overhead, broker churn (gated): baseline %.2fms, instrumented %.2fms, overhead %+.2f%% (threshold %g%%, pass=%v)\n",
		broker.BaselineMS, broker.InstrumentedMS, broker.OverheadPct, rep.ThresholdPct, rep.Pass)
	fmt.Printf("fleet overhead, api requests: baseline %.2fms, instrumented %.2fms, overhead %+.2f%%\n",
		api.BaselineMS, api.InstrumentedMS, api.OverheadPct)
	fmt.Printf("report written to %s\n", path)
	if !rep.Pass {
		return fmt.Errorf("fleet observability overhead %.2f%% exceeds %g%%", rep.OverheadPct, rep.ThresholdPct)
	}
	return nil
}
