package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	hyperdrive "github.com/hyperdrive-ml/hyperdrive"
)

// obsScenario is one measured workload in the BENCH_obs.json report.
type obsScenario struct {
	Policy         string  `json:"policy"`
	Jobs           int     `json:"jobs"`
	Machines       int     `json:"machines"`
	Reps           int     `json:"reps"`
	RunsPerRep     int     `json:"runs_per_rep"`
	BaselineMS     float64 `json:"baseline_ms"`     // min over reps, registry disabled
	InstrumentedMS float64 `json:"instrumented_ms"` // min over reps, registry enabled
	OverheadPct    float64 `json:"overhead_pct"`
}

// obsBenchReport is the BENCH_obs.json schema: the measured cost of
// enabling the obs registry on the simulator hot path. The pass
// criterion is the POP scenario — the policy every HyperDrive
// simulation in the paper runs — while the default-policy scenario is
// a synthetic stress case (an empty policy leaves the simulator loop
// at ~0.4µs/epoch, so it bounds instrumentation cost from above).
type obsBenchReport struct {
	POP          obsScenario `json:"pop"`
	Stress       obsScenario `json:"stress_default"`
	OverheadPct  float64     `json:"overhead_pct"` // = POP scenario
	ThresholdPct float64     `json:"threshold_pct"`
	Pass         bool        `json:"pass"`
}

// measureScenario times RunSimulation with and without an obs registry
// attached. Baseline and instrumented runs alternate so machine drift
// hits both arms equally, and each arm reports its minimum over the
// reps: scheduler and co-tenant noise only ever adds time, so the
// minimum is the robust estimate of true cost on a busy host.
func measureScenario(tr *hyperdrive.Trace, pol string, machines, reps, runsPerRep int) (obsScenario, error) {
	sc := obsScenario{
		Policy:     pol,
		Jobs:       len(tr.Jobs),
		Machines:   machines,
		Reps:       reps,
		RunsPerRep: runsPerRep,
	}
	// One long-lived registry, as in a real deployment: registry
	// construction is experiment setup, not hot-path cost.
	sharedReg := hyperdrive.NewObsRegistry()
	run := func(obs bool) (time.Duration, error) {
		runtime.GC() // start each timed window from a clean heap
		t0 := time.Now()
		for i := 0; i < runsPerRep; i++ {
			var reg *hyperdrive.ObsRegistry
			if obs {
				reg = sharedReg
			}
			if _, err := hyperdrive.RunSimulation(hyperdrive.SimConfig{
				Trace:    tr,
				Policy:   pol,
				Machines: machines,
				Obs:      reg,
			}); err != nil {
				return 0, err
			}
		}
		return time.Since(t0), nil
	}

	// Warm both arms before measuring.
	if _, err := run(false); err != nil {
		return sc, err
	}
	if _, err := run(true); err != nil {
		return sc, err
	}

	var baseline, instrumented []float64
	for i := 0; i < reps; i++ {
		// Alternate arm order so slow drift cancels across pairs.
		var db, di time.Duration
		var err error
		if i%2 == 0 {
			if db, err = run(false); err == nil {
				di, err = run(true)
			}
		} else {
			if di, err = run(true); err == nil {
				db, err = run(false)
			}
		}
		if err != nil {
			return sc, err
		}
		baseline = append(baseline, db.Seconds()*1e3)
		instrumented = append(instrumented, di.Seconds()*1e3)
	}
	sc.BaselineMS = minOf(baseline)
	sc.InstrumentedMS = minOf(instrumented)
	sc.OverheadPct = (sc.InstrumentedMS - sc.BaselineMS) / sc.BaselineMS * 100
	return sc, nil
}

// runObsBench measures instrumentation overhead on the simulator and
// writes the comparison to path.
func runObsBench(path string, seed int64) error {
	tr, err := hyperdrive.CollectTrace("cifar10", 192, seed)
	if err != nil {
		return err
	}

	// Realistic scenario: POP, the paper's scheduling policy. MCMC
	// curve fitting dominates, as in every simulation the paper reports.
	popTrace := &hyperdrive.Trace{}
	*popTrace = *tr
	popTrace.Jobs = tr.Jobs[:48]
	pop, err := measureScenario(popTrace, "pop", 8, 5, 1)
	if err != nil {
		return err
	}

	// Stress scenario: the empty Default policy leaves nothing but the
	// event loop, bounding per-epoch instrumentation cost from above.
	stress, err := measureScenario(tr, "default", 8, 15, 6)
	if err != nil {
		return err
	}

	rep := obsBenchReport{
		POP:          pop,
		Stress:       stress,
		OverheadPct:  pop.OverheadPct,
		ThresholdPct: 3,
	}
	rep.Pass = rep.OverheadPct < rep.ThresholdPct

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	fmt.Printf("obs overhead, pop (gated): baseline %.2fms, instrumented %.2fms, overhead %+.2f%% (threshold %g%%, pass=%v)\n",
		pop.BaselineMS, pop.InstrumentedMS, pop.OverheadPct, rep.ThresholdPct, rep.Pass)
	fmt.Printf("obs overhead, default-policy stress: baseline %.2fms, instrumented %.2fms, overhead %+.2f%%\n",
		stress.BaselineMS, stress.InstrumentedMS, stress.OverheadPct)
	fmt.Printf("report written to %s\n", path)
	if !rep.Pass {
		return fmt.Errorf("instrumentation overhead %.2f%% exceeds %g%%", rep.OverheadPct, rep.ThresholdPct)
	}
	return nil
}

func minOf(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[0]
}
