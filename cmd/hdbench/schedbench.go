package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"os"
	"runtime"
	"sync"
	"time"

	"github.com/hyperdrive-ml/hyperdrive/internal/chaos"
	"github.com/hyperdrive-ml/hyperdrive/internal/clock"
	"github.com/hyperdrive-ml/hyperdrive/internal/cluster"
	"github.com/hyperdrive-ml/hyperdrive/internal/hypergen"
	"github.com/hyperdrive-ml/hyperdrive/internal/obs"
	"github.com/hyperdrive-ml/hyperdrive/internal/param"
	"github.com/hyperdrive-ml/hyperdrive/internal/policy"
)

// schedSlotPool is the mutator surface shared by the sharded pool and
// the single-lock baseline, so one workload drives both arms.
type schedSlotPool interface {
	ReserveIdleMachine() (cluster.SlotID, bool)
	ReleaseMachine(cluster.SlotID) error
	MarkOffline([]cluster.SlotID)
	MarkOnline([]cluster.SlotID)
}

// churnArm is one measured pool implementation under the agent-churn
// workload.
type churnArm struct {
	Name      string  `json:"name"`
	MS        float64 `json:"ms"` // min over reps
	OpsPerSec float64 `json:"ops_per_sec"`
}

// churnReport is the gated half of BENCH_sched.json: slot-pool
// throughput under reserve/release churn with agent flaps — the access
// pattern a large fleet imposes on the scheduler core. The seed pool
// pays an O(idle-slots) scan for every quarantined slot, so its cost
// explodes with fleet size; the sharded pool's indexed free-lists make
// the same transition O(1).
type churnReport struct {
	Agents        int        `json:"agents"`
	SlotsPerAgent int        `json:"slots_per_agent"`
	TotalSlots    int        `json:"total_slots"`
	OpsPerAgent   int        `json:"ops_per_agent"`
	FlapEvery     int        `json:"flap_every"`
	Workers       int        `json:"workers"`
	Reps          int        `json:"reps"`
	Shards        int        `json:"shards"`
	Arms          []churnArm `json:"arms"`
	Speedup       float64    `json:"speedup"`
	Threshold     float64    `json:"threshold"`
	Pass          bool       `json:"pass"`
}

// e2eReport is the observational half: real agents served over real
// (chaos-wrapped, zero-fault) sockets, a full Experiment scheduling
// against them, and the decision-latency distribution that results.
type e2eReport struct {
	Agents          int     `json:"agents"`
	SlotsPerAgent   int     `json:"slots_per_agent"`
	Jobs            int     `json:"jobs"`
	Decisions       int64   `json:"decisions"`
	WallMS          float64 `json:"wall_ms"`
	DecisionsPerSec float64 `json:"decisions_per_sec"`
	P50MS           float64 `json:"p50_ms"`
	P99MS           float64 `json:"p99_ms"`
}

// schedBenchReport is the BENCH_sched.json schema.
type schedBenchReport struct {
	Scale string      `json:"scale"`
	Churn churnReport `json:"churn"`
	E2E   e2eReport   `json:"e2e"`
	Pass  bool        `json:"pass"`
}

// churnWorkload drives one pool through the fleet access pattern:
// every worker owns a contiguous range of agents and, per agent,
// interleaves reserve/release churn with periodic offline/online flaps
// of that agent's slot block (the supervisor's quarantine/restore on a
// heartbeat blip). Deterministic: no RNG in the loop, so both arms see
// the identical op sequence.
func churnWorkload(p schedSlotPool, slots []cluster.SlotID, per, agentLo, agentHi, opsPerAgent, flapEvery int) {
	held := make([]cluster.SlotID, 0, 64)
	for a := agentLo; a < agentHi; a++ {
		block := slots[a*per : (a+1)*per]
		for i := 1; i <= opsPerAgent; i++ {
			if i%flapEvery == 0 {
				p.MarkOffline(block)
				p.MarkOnline(block)
				continue
			}
			if len(held) < cap(held) {
				if s, ok := p.ReserveIdleMachine(); ok {
					held = append(held, s)
					continue
				}
			}
			if len(held) > 0 {
				s := held[0]
				held = held[:copy(held, held[1:])]
				_ = p.ReleaseMachine(s)
			}
		}
	}
	for _, s := range held {
		_ = p.ReleaseMachine(s)
	}
}

// measureChurn times the full workload (agents × opsPerAgent ops split
// across workers) for one pool constructor, reporting the minimum over
// reps (noise only adds time).
func measureChurn(build func([]cluster.SlotID) schedSlotPool, slots []cluster.SlotID, agents, per, opsPerAgent, flapEvery, workers, reps int) churnArm {
	best := time.Duration(0)
	for r := 0; r < reps; r++ {
		p := build(slots)
		runtime.GC()
		var wg sync.WaitGroup
		chunk := (agents + workers - 1) / workers
		t0 := time.Now()
		for w := 0; w < workers; w++ {
			lo, hi := w*chunk, (w+1)*chunk
			if hi > agents {
				hi = agents
			}
			if lo >= hi {
				continue
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				churnWorkload(p, slots, per, lo, hi, opsPerAgent, flapEvery)
			}(lo, hi)
		}
		wg.Wait()
		d := time.Since(t0)
		if best == 0 || d < best {
			best = d
		}
	}
	ops := float64(agents * opsPerAgent)
	return churnArm{MS: best.Seconds() * 1e3, OpsPerSec: ops / best.Seconds()}
}

// runChurn benchmarks both pool implementations under the identical
// workload and gates the sharded/unsharded speedup.
func runChurn(agents, per, opsPerAgent, flapEvery int, threshold float64) churnReport {
	slots := make([]cluster.SlotID, 0, agents*per)
	for a := 0; a < agents; a++ {
		for k := 0; k < per; k++ {
			slots = append(slots, cluster.SlotID(fmt.Sprintf("agent%d#%d", a, k)))
		}
	}
	const workers, reps = 8, 3
	rep := churnReport{
		Agents: agents, SlotsPerAgent: per, TotalSlots: agents * per,
		OpsPerAgent: opsPerAgent, FlapEvery: flapEvery,
		Workers: workers, Reps: reps,
		Shards:    cluster.NewResourceManager(slots).Shards(),
		Threshold: threshold,
	}
	unsharded := measureChurn(func(s []cluster.SlotID) schedSlotPool {
		return cluster.NewUnshardedResourceManager(s)
	}, slots, agents, per, opsPerAgent, flapEvery, workers, reps)
	unsharded.Name = "unsharded"
	sharded := measureChurn(func(s []cluster.SlotID) schedSlotPool {
		return cluster.NewResourceManager(s)
	}, slots, agents, per, opsPerAgent, flapEvery, workers, reps)
	sharded.Name = "sharded"
	rep.Arms = []churnArm{unsharded, sharded}
	if sharded.MS > 0 {
		rep.Speedup = unsharded.MS / sharded.MS
	}
	rep.Pass = rep.Speedup >= rep.Threshold
	return rep
}

// runE2E boots real agents behind chaos listeners (zero faults — the
// same wire path the chaos suite exercises), schedules a full
// experiment across them over TCP, and reads the decision-latency
// histogram the scheduler maintains anyway.
func runE2E(agents, per, jobs int, seed int64) (e2eReport, error) {
	rep := e2eReport{Agents: agents, SlotsPerAgent: per, Jobs: jobs}
	clk := clock.NewScaled(time.Date(2017, 12, 11, 0, 0, 0, 0, time.UTC), 200000)
	events := make(chan cluster.Event, 4096)
	reg := obs.NewRegistry()

	execs := make([]cluster.Executor, 0, agents)
	var closers []func()
	defer func() {
		for _, c := range closers {
			c()
		}
	}()
	for i := 0; i < agents; i++ {
		a, err := cluster.NewAgent(cluster.AgentOptions{
			ID: fmt.Sprintf("agent%d", i), Slots: per, Clock: clk, Seed: seed + int64(i),
		})
		if err != nil {
			return rep, err
		}
		nl, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return rep, err
		}
		go a.Serve(chaos.NewListener(nl, chaos.Options{}))
		client, err := cluster.DialAgent(nl.Addr().String(), events)
		if err != nil {
			return rep, err
		}
		closers = append(closers, func() { client.Close(); a.Close(); nl.Close() })
		execs = append(execs, client)
	}
	multi, err := cluster.NewMultiExecutor(execs...)
	if err != nil {
		return rep, err
	}

	space := param.CIFAR10Space()
	rng := rand.New(rand.NewSource(seed))
	cfgs := make([]param.Config, 0, jobs)
	for i := 0; i < jobs; i++ {
		cfgs = append(cfgs, space.Sample(rng))
	}
	e, err := cluster.New(cluster.Config{
		Workload:  "cifar10",
		Generator: hypergen.NewFixed(cfgs),
		Policy:    policy.NewDefault(),
		Executor:  multi,
		Events:    events,
		MaxJobs:   jobs,
		Clock:     clk,
		Obs:       reg,
		Seed:      seed,
	})
	if err != nil {
		return rep, err
	}
	t0 := time.Now()
	if _, err := e.Run(context.Background()); err != nil {
		return rep, err
	}
	wall := time.Since(t0)

	h := reg.Histogram(obs.DecisionLatencySeconds)
	rep.Decisions = h.Count()
	rep.WallMS = wall.Seconds() * 1e3
	if wall > 0 {
		rep.DecisionsPerSec = float64(rep.Decisions) / wall.Seconds()
	}
	rep.P50MS = h.Quantile(0.5) * 1e3
	rep.P99MS = h.Quantile(0.99) * 1e3
	return rep, nil
}

// runSchedBench measures scheduler-core scale-out and writes
// BENCH_sched.json. The gate is the churn arm: the sharded pool must
// beat the single-lock seed by the threshold at fleet scale.
func runSchedBench(path, scale string, seed int64) error {
	rep := schedBenchReport{Scale: scale}
	switch scale {
	case "paper":
		// The paper-scale claim: 1k agents, 16k slots, ≥5x.
		rep.Churn = runChurn(1000, 16, 96, 24, 5)
	case "fast":
		// Smoke scale for check.sh: small fleet, relaxed gate.
		rep.Churn = runChurn(256, 4, 48, 6, 1.5)
	default:
		return fmt.Errorf("unknown -sched-scale %q (want paper or fast)", scale)
	}

	var err error
	if scale == "paper" {
		rep.E2E, err = runE2E(64, 4, 512, seed)
	} else {
		rep.E2E, err = runE2E(8, 2, 32, seed)
	}
	if err != nil {
		return err
	}
	rep.Pass = rep.Churn.Pass

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	fmt.Printf("slot-pool churn, %d agents x %d slots (%d shards): unsharded %.1fms (%.0f ops/s), sharded %.1fms (%.0f ops/s) — %.1fx, threshold %.1fx, pass=%v\n",
		rep.Churn.Agents, rep.Churn.SlotsPerAgent, rep.Churn.Shards,
		rep.Churn.Arms[0].MS, rep.Churn.Arms[0].OpsPerSec,
		rep.Churn.Arms[1].MS, rep.Churn.Arms[1].OpsPerSec,
		rep.Churn.Speedup, rep.Churn.Threshold, rep.Churn.Pass)
	fmt.Printf("e2e over sockets, %d agents x %d slots, %d jobs: %d decisions in %.0fms (%.0f/s), latency p50 %.3fms p99 %.3fms\n",
		rep.E2E.Agents, rep.E2E.SlotsPerAgent, rep.E2E.Jobs,
		rep.E2E.Decisions, rep.E2E.WallMS, rep.E2E.DecisionsPerSec, rep.E2E.P50MS, rep.E2E.P99MS)
	fmt.Printf("report written to %s\n", path)
	if !rep.Pass {
		return fmt.Errorf("sched bench gate failed: %.1fx < %.1fx", rep.Churn.Speedup, rep.Churn.Threshold)
	}
	return nil
}
