package main

import (
	"fmt"
	"strings"
	"time"

	"github.com/hyperdrive-ml/hyperdrive/internal/obs"
)

// renderMarkdown builds the full report. Pure function of the loaded
// reports: no wall-clock reads, no map iteration, so the same logs
// always produce the same bytes.
func renderMarkdown(runs []policyRun) string {
	var b strings.Builder
	b.WriteString("# HyperDrive search-quality report\n\n")
	if len(runs) > 1 {
		renderComparison(&b, runs)
	}
	for _, r := range runs {
		renderRun(&b, r)
	}
	return b.String()
}

// renderComparison is the per-policy side-by-side table emitted when
// several logs are given.
func renderComparison(b *strings.Builder, runs []policyRun) {
	b.WriteString("## Policy comparison\n\n")
	b.WriteString("| policy | predictions | scored | Brier | band cov. | ERT relP50 | term P | term R | churn | time-to-best |\n")
	b.WriteString("|---|---:|---:|---:|---:|---:|---:|---:|---:|---:|\n")
	for _, r := range runs {
		rep := r.Report
		fmt.Fprintf(b, "| %s | %d | %d | %s | %s | %s | %s | %s | %d | %s |\n",
			r.Label, rep.Predictions, rep.Scored,
			num(rep.BrierScore), ratio(rep.Band.Ratio, rep.Band.Count),
			num(rep.ERTError.RelP50),
			ratio(rep.EarlyTerm.Precision, rep.EarlyTerm.Terminated),
			ratio(rep.EarlyTerm.Recall, rep.EarlyTerm.PoorTotal),
			rep.ChurnTotal, fmtMS(rep.TimeToBestMS, reportBase(rep)))
	}
	b.WriteString("\n")
}

// renderRun emits one run's full section set.
func renderRun(b *strings.Builder, r policyRun) {
	rep := r.Report
	fmt.Fprintf(b, "## Run: %s\n\n", r.Label)

	m := rep.Meta
	b.WriteString("| workload | policy | source | machines | max epoch | target | predictions | outcomes | oracles |\n")
	b.WriteString("|---|---|---|---:|---:|---:|---:|---:|---:|\n")
	fmt.Fprintf(b, "| %s | %s | %s | %d | %d | %s | %d | %d | %d |\n\n",
		orDash(m.Workload), orDash(m.Policy), orDash(m.Source),
		m.Machines, m.MaxEpoch, num(m.Target),
		rep.Predictions, rep.Outcomes, rep.Oracles)
	if rep.DroppedPredictions > 0 {
		fmt.Fprintf(b, "**Warning:** %d predictions dropped at the audit bound.\n\n",
			rep.DroppedPredictions)
	}

	base := reportBase(rep)
	renderReliability(b, rep)
	renderERT(b, rep)
	renderEarlyTerm(b, rep)
	renderRegret(b, rep, base)
	renderPools(b, rep, base)
}

// renderReliability emits the reliability diagram (confidence
// calibration) plus the scalar calibration scores.
func renderReliability(b *strings.Builder, rep *obs.QualityReport) {
	b.WriteString("### Prediction calibration\n\n")
	fmt.Fprintf(b, "Brier score **%s** over %d scored predictions; credible-band coverage %s.\n\n",
		num(rep.BrierScore), rep.Scored, ratio(rep.Band.Ratio, rep.Band.Count))
	b.WriteString("| confidence bin | count | mean conf. | observed freq. | calibration gap |\n")
	b.WriteString("|---|---:|---:|---:|---:|\n")
	for _, bin := range rep.Reliability {
		if bin.Count == 0 {
			fmt.Fprintf(b, "| %.1f–%.1f | 0 | – | – | – |\n", bin.Low, bin.High)
			continue
		}
		fmt.Fprintf(b, "| %.1f–%.1f | %d | %s | %s | %+.4f |\n",
			bin.Low, bin.High, bin.Count, num(bin.MeanConfidence), num(bin.Observed),
			bin.Observed-bin.MeanConfidence)
	}
	b.WriteString("\nA well-calibrated predictor puts observed frequency ≈ mean confidence in every bin (gap ≈ 0).\n\n")
}

// renderERT emits the ERT error percentiles against oracle truth.
func renderERT(b *strings.Builder, rep *obs.QualityReport) {
	b.WriteString("### ERT accuracy\n\n")
	e := rep.ERTError
	if e.Count == 0 {
		b.WriteString("No ERT-scorable predictions (needs oracle ground truth on target-reaching jobs).\n\n")
		return
	}
	fmt.Fprintf(b, "%d predictions scored against oracle remaining-time truth.\n\n", e.Count)
	b.WriteString("| | P50 | P90 | P99 |\n|---|---:|---:|---:|\n")
	fmt.Fprintf(b, "| absolute error | %s | %s | %s |\n",
		fmtSeconds(e.AbsP50), fmtSeconds(e.AbsP90), fmtSeconds(e.AbsP99))
	fmt.Fprintf(b, "| relative error | %s | %s | %s |\n\n",
		num(e.RelP50), num(e.RelP90), num(e.RelP99))
}

// renderEarlyTerm emits the termination confusion against the oracle.
func renderEarlyTerm(b *strings.Builder, rep *obs.QualityReport) {
	b.WriteString("### Early termination vs oracle\n\n")
	t := rep.EarlyTerm
	if t.Terminated == 0 && t.PoorTotal == 0 {
		b.WriteString("No terminations and no oracle-poor jobs to judge.\n\n")
		return
	}
	b.WriteString("| terminated | true poor | false poor | oracle-poor total | precision | recall |\n")
	b.WriteString("|---:|---:|---:|---:|---:|---:|\n")
	fmt.Fprintf(b, "| %d | %d | %d | %d | %s | %s |\n\n",
		t.Terminated, t.TruePoor, t.FalsePoor, t.PoorTotal,
		ratio(t.Precision, t.Terminated), ratio(t.Recall, t.PoorTotal))
	fmt.Fprintf(b, "Classification churn: %d pool changes across %d jobs.\n\n",
		rep.ChurnTotal, rep.ChurnedJobs)
}

// renderRegret emits the time-to-best regret curve: the running best
// metric against the oracle ceiling over virtual time.
func renderRegret(b *strings.Builder, rep *obs.QualityReport, base int64) {
	b.WriteString("### Time-to-best regret\n\n")
	if len(rep.Regret) == 0 {
		b.WriteString("No best-metric samples recorded.\n\n")
		return
	}
	fmt.Fprintf(b, "Oracle ceiling %s; best found %s at t=%s.\n\n",
		num(rep.OracleBest), num(rep.Regret[len(rep.Regret)-1].Best), fmtMS(rep.TimeToBestMS, base))
	vals := make([]float64, len(rep.Regret))
	for i, p := range rep.Regret {
		vals[i] = p.Regret
	}
	fmt.Fprintf(b, "    regret %s\n\n", sparkline(vals, 60))
	b.WriteString("| t | job best | regret |\n|---:|---:|---:|\n")
	for _, p := range sampledRegret(rep.Regret, 12) {
		fmt.Fprintf(b, "| %s | %s | %s |\n", fmtMS(p.TMS, base), num(p.Best), num(p.Regret))
	}
	b.WriteString("\n")
}

// sampledRegret thins the regret curve to at most n evenly spaced rows
// (always keeping first and last).
func sampledRegret(pts []obs.RegretPoint, n int) []obs.RegretPoint {
	if len(pts) <= n {
		return pts
	}
	out := make([]obs.RegretPoint, 0, n)
	for i := 0; i < n-1; i++ {
		out = append(out, pts[i*(len(pts)-1)/(n-1)])
	}
	return append(out, pts[len(pts)-1])
}

// renderPools emits the pool occupancy timeline as sparklines.
func renderPools(b *strings.Builder, rep *obs.QualityReport, base int64) {
	b.WriteString("### Pool occupancy timeline\n\n")
	if len(rep.PoolTimeline) == 0 {
		b.WriteString("No pool samples recorded (non-POP policy?).\n\n")
		return
	}
	prom := make([]float64, len(rep.PoolTimeline))
	opp := make([]float64, len(rep.PoolTimeline))
	poor := make([]float64, len(rep.PoolTimeline))
	for i, p := range rep.PoolTimeline {
		prom[i], opp[i], poor[i] = float64(p.Promising), float64(p.Opportunistic), float64(p.Poor)
	}
	first, last := rep.PoolTimeline[0], rep.PoolTimeline[len(rep.PoolTimeline)-1]
	fmt.Fprintf(b, "%d samples, t=%s → %s.\n\n", len(rep.PoolTimeline), fmtMS(first.TMS, base), fmtMS(last.TMS, base))
	fmt.Fprintf(b, "    promising     %s  (last %d)\n", sparkline(prom, 60), last.Promising)
	fmt.Fprintf(b, "    opportunistic %s  (last %d)\n", sparkline(opp, 60), last.Opportunistic)
	fmt.Fprintf(b, "    poor          %s  (last %d)\n\n", sparkline(poor, 60), last.Poor)
}

// sparkline renders a series as unicode block characters, downsampled
// to at most width columns by bucket means.
func sparkline(vals []float64, width int) string {
	if len(vals) == 0 {
		return ""
	}
	if len(vals) > width {
		bucketed := make([]float64, width)
		for i := 0; i < width; i++ {
			lo, hi := i*len(vals)/width, (i+1)*len(vals)/width
			if hi <= lo {
				hi = lo + 1
			}
			var sum float64
			for _, v := range vals[lo:hi] {
				sum += v
			}
			bucketed[i] = sum / float64(hi-lo)
		}
		vals = bucketed
	}
	min, max := vals[0], vals[0]
	for _, v := range vals {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	var b strings.Builder
	for _, v := range vals {
		idx := 0
		if max > min {
			idx = int((v - min) / (max - min) * float64(len(blocks)-1))
		}
		b.WriteRune(blocks[idx])
	}
	return b.String()
}

// --- formatting helpers ----------------------------------------------

// num renders a float compactly and deterministically.
func num(v float64) string {
	return fmt.Sprintf("%.4f", v)
}

// ratio renders a proportion, or a dash when its denominator is empty.
func ratio(v float64, n int) string {
	if n == 0 {
		return "–"
	}
	return fmt.Sprintf("%.1f%%", v*100)
}

// fmtSeconds renders a seconds quantity at a human scale.
func fmtSeconds(s float64) string {
	d := time.Duration(s * float64(time.Second))
	switch {
	case d >= time.Hour:
		return fmt.Sprintf("%.2fh", d.Hours())
	case d >= time.Minute:
		return fmt.Sprintf("%.1fm", d.Minutes())
	default:
		return fmt.Sprintf("%.1fs", d.Seconds())
	}
}

// reportBase finds the run-clock origin of a report: the earliest
// timestamp among its samples. Sim runs start at the fixed virtual
// epoch and live runs at the wall clock; rendering every timestamp
// relative to the earliest sample makes both read as elapsed
// experiment time.
func reportBase(rep *obs.QualityReport) int64 {
	base := int64(0)
	consider := func(t int64) {
		if t > 0 && (base == 0 || t < base) {
			base = t
		}
	}
	for _, p := range rep.Regret {
		consider(p.TMS)
	}
	for _, p := range rep.PoolTimeline {
		consider(p.TMS)
	}
	return base
}

// fmtMS renders a run-clock unix-milliseconds timestamp as time
// elapsed since the report's base.
func fmtMS(tms, base int64) string {
	if tms == 0 {
		return "–"
	}
	d := time.Duration(tms-base) * time.Millisecond
	if d < 0 {
		d = 0
	}
	switch {
	case d >= time.Hour:
		return fmt.Sprintf("%.2fh", d.Hours())
	case d >= time.Minute:
		return fmt.Sprintf("%.1fm", d.Minutes())
	default:
		return fmt.Sprintf("%.1fs", d.Seconds())
	}
}

// orDash substitutes a dash for empty strings in meta tables.
func orDash(s string) string {
	if s == "" {
		return "–"
	}
	return s
}
