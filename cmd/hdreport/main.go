// Command hdreport renders end-of-run search-quality reports from
// quality audit logs (hdsim -quality-out, hyperdrive QualityOut) or a
// live introspection endpoint: prediction-calibration tables
// (reliability diagram, Brier score, credible-band coverage), ERT
// error percentiles, early-termination precision/recall against the
// sim oracle, pool occupancy timeline, and the time-to-best regret
// curve. Given several logs it adds a per-policy comparison.
//
//	hdreport -o results/report.md quality.jsonl
//	hdreport -o results/compare.md quality.pop quality.bandit
//	hdreport -addr localhost:8089 -o results/live.md
//	hdreport -format html -o results/report.html quality.jsonl
//
// Output is a pure function of the input logs — no wall-clock reads —
// so a report from a deterministic simulator run is byte-identical
// across runs and hosts.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/hyperdrive-ml/hyperdrive/internal/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hdreport:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hdreport", flag.ContinueOnError)
	var (
		out    = fs.String("o", "results/report.md", "output file ('-' for stdout)")
		format = fs.String("format", "md", "report format: md or html")
		addr   = fs.String("addr", "", "also pull the audit from a live introspection endpoint (host:port)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	inputs := fs.Args()
	if len(inputs) == 0 && *addr == "" {
		return fmt.Errorf("no quality logs given (and no -addr); run hdsim -quality-out first")
	}

	var runs []policyRun
	for _, path := range inputs {
		r, err := loadFile(path)
		if err != nil {
			return err
		}
		runs = append(runs, r)
	}
	if *addr != "" {
		r, err := loadEndpoint(*addr)
		if err != nil {
			return err
		}
		runs = append(runs, r)
	}

	var doc string
	switch *format {
	case "md", "markdown":
		doc = renderMarkdown(runs)
	case "html":
		doc = renderHTML(runs)
	default:
		return fmt.Errorf("unknown format %q (want md or html)", *format)
	}

	if *out == "-" {
		_, err := io.WriteString(os.Stdout, doc)
		return err
	}
	if dir := filepath.Dir(*out); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	if err := os.WriteFile(*out, []byte(doc), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d run(s))\n", *out, len(runs))
	return nil
}

// policyRun is one loaded audit: its label (the policy name, or the
// file basename when the log carries no policy) and computed report.
type policyRun struct {
	Label  string
	Report *obs.QualityReport
}

func loadFile(path string) (policyRun, error) {
	f, err := os.Open(path)
	if err != nil {
		return policyRun{}, err
	}
	defer f.Close()
	q, err := obs.ReadQualityLog(f)
	if err != nil {
		return policyRun{}, fmt.Errorf("%s: %w", path, err)
	}
	rep := q.Report()
	return policyRun{Label: runLabel(rep, filepath.Base(path)), Report: rep}, nil
}

// loadEndpoint streams the audit log from a live run's introspection
// endpoint (hdreport's only non-deterministic input: the run is still
// moving).
func loadEndpoint(addr string) (policyRun, error) {
	client := &http.Client{Timeout: 10 * time.Second}
	url := "http://" + addr + "/debug/obs/quality?format=log"
	resp, err := client.Get(url)
	if err != nil {
		return policyRun{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return policyRun{}, fmt.Errorf("%s: %s (is the run started with quality auditing enabled?)", url, resp.Status)
	}
	q, err := obs.ReadQualityLog(resp.Body)
	if err != nil {
		return policyRun{}, fmt.Errorf("%s: %w", url, err)
	}
	rep := q.Report()
	return policyRun{Label: runLabel(rep, addr), Report: rep}, nil
}

func runLabel(rep *obs.QualityReport, fallback string) string {
	if rep.Meta.Policy != "" {
		return rep.Meta.Policy
	}
	return fallback
}

// renderHTML wraps the Markdown report as a self-contained HTML page:
// no external assets, monospace layout, readable in any browser.
func renderHTML(runs []policyRun) string {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html>\n<head>\n<meta charset=\"utf-8\">\n")
	b.WriteString("<title>HyperDrive search-quality report</title>\n")
	b.WriteString("<style>body{background:#fdfdfd;color:#222;margin:2em auto;max-width:60em}" +
		"pre{font:13px/1.45 ui-monospace,monospace;white-space:pre-wrap}</style>\n")
	b.WriteString("</head>\n<body>\n<pre>\n")
	b.WriteString(htmlEscape(renderMarkdown(runs)))
	b.WriteString("</pre>\n</body>\n</html>\n")
	return b.String()
}

func htmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}
