package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/hyperdrive-ml/hyperdrive"
)

func quietStdout(t *testing.T) {
	t.Helper()
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	t.Cleanup(func() { os.Stdout = old; devnull.Close() })
}

// writeQualityLog runs one deterministic simulated POP experiment and
// returns the path of its quality audit log.
func writeQualityLog(t *testing.T, dir string) string {
	t.Helper()
	tr, err := hyperdrive.CollectTrace("cifar10", 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "quality.jsonl")
	_, err = hyperdrive.RunSimulation(hyperdrive.SimConfig{
		Trace:      tr,
		Policy:     "pop",
		Machines:   2,
		QualityOut: path,
	})
	if err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReportContents(t *testing.T) {
	quietStdout(t)
	dir := t.TempDir()
	log := writeQualityLog(t, dir)
	out := filepath.Join(dir, "report.md")
	if err := run([]string{"-o", out, log}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	doc := string(data)
	for _, want := range []string{
		"# HyperDrive search-quality report",
		"## Run: pop",
		"### Prediction calibration",
		"Brier score",
		"| confidence bin | count | mean conf. | observed freq. |",
		"### ERT accuracy",
		"### Early termination vs oracle",
		"### Time-to-best regret",
		"### Pool occupancy timeline",
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// The reliability table must render every confidence bin.
	if n := strings.Count(doc, "| 0."); n < 5 {
		t.Errorf("reliability table has %d bin rows, want >= 5", n)
	}
}

func TestReportDeterministic(t *testing.T) {
	quietStdout(t)
	dir := t.TempDir()
	logA := writeQualityLog(t, dir)
	outA := filepath.Join(dir, "a.md")
	outB := filepath.Join(dir, "b.md")
	if err := run([]string{"-o", outA, logA}); err != nil {
		t.Fatal(err)
	}
	// Second full pipeline: fresh sim run, fresh report.
	dirB := t.TempDir()
	logB := writeQualityLog(t, dirB)
	if err := run([]string{"-o", outB, logB}); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(outA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(outB)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("two identical sim runs produced different reports")
	}
}

func TestReportComparisonAndHTML(t *testing.T) {
	quietStdout(t)
	dir := t.TempDir()
	log := writeQualityLog(t, dir)
	out := filepath.Join(dir, "cmp.md")
	if err := run([]string{"-o", out, log, log}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "## Policy comparison") {
		t.Error("multi-log report missing comparison table")
	}

	htmlOut := filepath.Join(dir, "report.html")
	if err := run([]string{"-o", htmlOut, "-format", "html", log}); err != nil {
		t.Fatal(err)
	}
	html, err := os.ReadFile(htmlOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(html), "<!DOCTYPE html>") {
		t.Error("html report missing doctype")
	}
}

func TestReportErrors(t *testing.T) {
	quietStdout(t)
	if err := run(nil); err == nil {
		t.Fatal("accepted empty input set")
	}
	if err := run([]string{"/nonexistent.jsonl"}); err == nil {
		t.Fatal("accepted missing log")
	}
	dir := t.TempDir()
	log := writeQualityLog(t, dir)
	if err := run([]string{"-format", "nope", log}); err == nil {
		t.Fatal("accepted unknown format")
	}
}
