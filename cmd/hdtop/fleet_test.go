package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"github.com/hyperdrive-ml/hyperdrive/internal/obs"
)

func fleetRegistry() *obs.Registry {
	reg := obs.NewRegistry()
	reg.Gauge(obs.ServeExperimentsActive).Set(2)
	reg.Counter(obs.ServeExperimentsTotal).Add(5)
	reg.Counter(obs.ServeRequestsTotal).Add(420)
	reg.Counter(obs.ServeRateLimitedTotal).Add(3)
	reg.Counter(obs.ServeAdmissionRejectsTotal).Add(1)
	reg.Counter(obs.ServeHTTPResponsesTotal("2xx")).Add(400)
	reg.Counter(obs.ServeHTTPResponsesTotal("4xx")).Add(20)
	reg.Gauge(obs.ServeHTTPInFlight).Set(1)
	reg.Gauge(obs.ServeStarvedLeases).Set(1)
	reg.Gauge(obs.ServeLeaseShare("alice")).Set(42.7)
	reg.Gauge(obs.ServeLeaseHeld("alice")).Set(40)
	reg.Gauge(obs.ServeLeaseDeficit("alice")).Set(3)
	reg.Gauge(obs.ServeLeaseStarvedSeconds("alice")).Set(12)
	reg.Gauge(obs.ServeLeaseShare("bob")).Set(21.3)
	reg.Gauge(obs.ServeLeaseHeld("bob")).Set(21)
	reg.Gauge(obs.ServeLeaseDeficit("bob")).Set(0)
	for i := 0; i < 30; i++ {
		reg.Histogram(obs.ServeHTTPRequestSeconds("submit"), 0.001, 0.01, 0.1).Observe(0.004)
		reg.Histogram(obs.ServeFairshareAttainment, obs.AttainmentBuckets...).Observe(0.95)
	}
	return reg
}

func TestRenderFleet(t *testing.T) {
	reg := fleetRegistry()
	health := fleetHealth{Status: "degraded", UptimeSec: 90, Experiments: 2}
	health.Checks = append(health.Checks, struct {
		Name   string `json:"name"`
		Status string `json:"status"`
		Detail string `json:"detail"`
	}{Name: "broker_starvation", Status: "warn", Detail: "1 starved lease(s), worst 12.0s"})
	exps := []fleetExp{
		{ID: "e1", Tenant: "alice", State: "running", Workload: "cifar10", HeldSlots: 40, Share: 43, Best: 0.81},
		{ID: "e2", Tenant: "bob", State: "done", Workload: "cifar10", HeldSlots: 0, Share: 22, Best: 0.77},
	}
	now := time.Date(2026, 8, 5, 10, 30, 0, 0, time.UTC)
	out := renderFleet("localhost:7070", reg.Snapshot(), exps, health, nil, now)

	for _, want := range []string{
		"hdtop fleet — localhost:7070",
		"health degraded",
		"WARN   broker_starvation",
		"requests 420",
		"2xx 400",
		"TENANT",
		"alice",
		"42.7",
		"bob",
		"12s", // alice's starvation
		"ROUTE",
		"submit",
		"attainment p50",
		"e1",
		"running",
		"0.8100",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("fleet render missing %q\n%s", want, out)
		}
	}
}

func TestRenderFleetSparklines(t *testing.T) {
	reg := fleetRegistry()
	reg.EnableHistory(0)
	base := time.Date(2026, 8, 5, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 12; i++ {
		reg.Gauge(obs.ServeHTTPInFlight).Set(float64(i % 5))
		reg.Histogram(obs.ServeHTTPRequestSeconds("submit"), 0.001, 0.01, 0.1).Observe(float64(i) * 0.001)
		reg.SampleHistory(base.Add(time.Duration(i) * time.Second))
	}
	out := renderFleet("x", reg.Snapshot(), nil, fleetHealth{Status: "ok"}, reg.History().Snapshot(), base)
	if !strings.Contains(out, "latency p99 submit") || !strings.Contains(out, "█") {
		t.Errorf("fleet sparklines missing:\n%s", out)
	}
	out = renderFleet("x", reg.Snapshot(), nil, fleetHealth{Status: "ok"}, nil, base)
	if strings.Contains(out, "█") {
		t.Errorf("sparkline rendered without history:\n%s", out)
	}
}

func TestRunFleetOnceAgainstServer(t *testing.T) {
	reg := fleetRegistry()
	mux := http.NewServeMux()
	mux.Handle("/obs/", http.StripPrefix("/obs", obs.Handler(reg, obs.HandlerOptions{})))
	mux.HandleFunc("/v1/experiments", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `[{"id":"e1","tenant":"alice","state":"running","workload":"cifar10","heldSlots":40,"shareSlots":43,"best":0.81}]`)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"status":"ok","uptimeSec":5,"experiments":1,"checks":[{"name":"slots","status":"ok"}]}`)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	addr := strings.TrimPrefix(srv.URL, "http://")

	f, err := os.CreateTemp(t.TempDir(), "hdtop")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := run([]string{"-server", addr, "-once"}, f); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"hdtop fleet", "health ok", "alice", "e1"} {
		if !strings.Contains(string(b), want) {
			t.Errorf("fleet one-shot output missing %q:\n%s", want, b)
		}
	}
}

func TestLabelValue(t *testing.T) {
	if got := labelValue(`x{tenant="alice"}`, "tenant"); got != "alice" {
		t.Errorf("labelValue = %q", got)
	}
	if got := labelValue(`x{route="submit",le="1"}`, "le"); got != "1" {
		t.Errorf("labelValue le = %q", got)
	}
	if got := labelValue("plain", "tenant"); got != "" {
		t.Errorf("labelValue on unlabeled = %q", got)
	}
}
