// Fleet mode: `hdtop -server host:port` points at a hyperdrived
// process instead of a single experiment, rendering the server-wide
// view — per-tenant fair-share attainment and starvation, API latency,
// and every hosted experiment's state — from the fleet observability
// endpoints (/obs/metrics.json, /v1/experiments, /healthz).
package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"github.com/hyperdrive-ml/hyperdrive/internal/obs"
)

// fleetExp is the slice of serve.ExperimentStatus hdtop needs (decoded
// structurally so hdtop does not depend on the serve package).
type fleetExp struct {
	ID        string  `json:"id"`
	Tenant    string  `json:"tenant"`
	State     string  `json:"state"`
	Workload  string  `json:"workload"`
	Policy    string  `json:"policy"`
	HeldSlots int     `json:"heldSlots"`
	Share     int     `json:"shareSlots"`
	Best      float64 `json:"best"`
}

// fleetHealth is the /healthz body hdtop renders.
type fleetHealth struct {
	Status      string  `json:"status"`
	UptimeSec   float64 `json:"uptimeSec"`
	Experiments int     `json:"experiments"`
	Checks      []struct {
		Name   string `json:"name"`
		Status string `json:"status"`
		Detail string `json:"detail"`
	} `json:"checks"`
}

// pollFleet fetches one frame of fleet state from hyperdrived.
func pollFleet(client *http.Client, base string) (obs.Snapshot, []fleetExp, fleetHealth, map[string][]obs.HistoryPoint, error) {
	var snap obs.Snapshot
	if err := getJSON(client, base+"/obs/metrics.json", &snap); err != nil {
		return snap, nil, fleetHealth{}, nil, err
	}
	var exps []fleetExp
	if err := getJSON(client, base+"/v1/experiments", &exps); err != nil {
		return snap, nil, fleetHealth{}, nil, err
	}
	var health fleetHealth
	// /healthz serves 503 with the same JSON body when critical; decode
	// regardless of status.
	if err := getJSONAnyStatus(client, base+"/healthz", &health); err != nil {
		return snap, exps, fleetHealth{}, nil, err
	}
	var hist map[string][]obs.HistoryPoint
	if err := getJSON(client, base+"/obs/debug/obs/history", &hist); err != nil {
		hist = nil // optional: absent without the history store
	}
	return snap, exps, health, hist, nil
}

// labelValue extracts one label's value from a labeled series name:
// labelValue(`x{tenant="a"}`, "tenant") == "a", "" when absent.
func labelValue(series, label string) string {
	i := strings.Index(series, label+`="`)
	if i < 0 {
		return ""
	}
	rest := series[i+len(label)+2:]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		return ""
	}
	return rest[:j]
}

// fleetTenants lists the tenants present in the snapshot's
// serve_lease_share gauges, alphabetically.
func fleetTenants(s obs.Snapshot) []string {
	var out []string
	prefix := "hyperdrive_serve_lease_share{"
	for name := range s.Gauges {
		if strings.HasPrefix(name, prefix) {
			if t := labelValue(name, "tenant"); t != "" {
				out = append(out, t)
			}
		}
	}
	sort.Strings(out)
	return out
}

// renderFleet draws one fleet dashboard frame. Pure function of its
// inputs so it can be tested without a server.
func renderFleet(addr string, s obs.Snapshot, exps []fleetExp, health fleetHealth, hist map[string][]obs.HistoryPoint, now time.Time) string {
	var b []byte
	w := func(format string, args ...interface{}) {
		b = append(b, fmt.Sprintf(format, args...)...)
	}

	w("hdtop fleet — %s — %s\n\n", addr, now.Format("15:04:05"))

	w("health %-9s uptime %s  experiments active %-3.0f total %-5d\n",
		health.Status, (time.Duration(health.UptimeSec) * time.Second).Truncate(time.Second),
		s.Gauges[obs.ServeExperimentsActive], s.Counters[obs.ServeExperimentsTotal])
	for _, c := range health.Checks {
		if c.Status != "ok" {
			w("  %-6s %-18s %s\n", strings.ToUpper(c.Status), c.Name, c.Detail)
		}
	}
	w("api    requests %-7d rate-limited %-5d admission-rejects %-4d in-flight %-3.0f starved-leases %.0f\n",
		s.Counters[obs.ServeRequestsTotal], s.Counters[obs.ServeRateLimitedTotal],
		s.Counters[obs.ServeAdmissionRejectsTotal], s.Gauges[obs.ServeHTTPInFlight],
		s.Gauges[obs.ServeStarvedLeases])
	w("http   2xx %-7d 4xx %-6d 5xx %-4d\n",
		s.Counters[obs.ServeHTTPResponsesTotal("2xx")],
		s.Counters[obs.ServeHTTPResponsesTotal("4xx")],
		s.Counters[obs.ServeHTTPResponsesTotal("5xx")])
	if h, ok := s.Histograms[obs.ServeFairshareAttainment]; ok && h.Count > 0 {
		w("fair   attainment p50 %.2f p90 %.2f p99 %.2f (n=%d)\n", h.P50, h.P90, h.P99, h.Count)
	}

	// Per-tenant fair-share table from the broker's lease gauges.
	if tenants := fleetTenants(s); len(tenants) > 0 {
		w("\n%-16s %8s %8s %8s %10s\n", "TENANT", "SHARE", "HELD", "DEFICIT", "STARVED")
		for _, t := range tenants {
			starved := s.Gauges[obs.ServeLeaseStarvedSeconds(t)]
			sv := "-"
			if starved > 0 {
				sv = (time.Duration(starved * float64(time.Second))).Truncate(time.Second).String()
			}
			w("%-16s %8.1f %8.0f %8.0f %10s\n", t,
				s.Gauges[obs.ServeLeaseShare(t)], s.Gauges[obs.ServeLeaseHeld(t)],
				s.Gauges[obs.ServeLeaseDeficit(t)], sv)
		}
	}

	// Per-route API latency.
	type routeLat struct {
		route string
		h     obs.HistogramSnapshot
	}
	var routes []routeLat
	for name, h := range s.Histograms {
		if strings.HasPrefix(name, "hyperdrive_serve_http_request_seconds{") && h.Count > 0 {
			routes = append(routes, routeLat{labelValue(name, "route"), h})
		}
	}
	sort.Slice(routes, func(i, j int) bool { return routes[i].route < routes[j].route })
	if len(routes) > 0 {
		w("\n%-16s %8s %10s %10s %10s\n", "ROUTE", "COUNT", "P50", "P90", "P99")
		for _, r := range routes {
			w("%-16s %8d %10s %10s %10s\n", r.route, r.h.Count,
				fmtDur(r.h.P50), fmtDur(r.h.P90), fmtDur(r.h.P99))
		}
	}

	// API latency sparklines from the history store: the sampled p99 of
	// each route histogram, plus fleet-level occupancy series.
	if len(hist) > 0 {
		var keys []string
		for name := range hist {
			if strings.HasPrefix(name, "hyperdrive_serve_http_request_seconds{") && strings.HasSuffix(name, ":p99") {
				keys = append(keys, name)
			}
		}
		sort.Strings(keys)
		keys = append(keys, obs.ServeExperimentsActive, obs.ServeHTTPInFlight, obs.ServeStarvedLeases)
		var lines []byte
		for _, name := range keys {
			pts := hist[name]
			if len(pts) < 2 {
				continue
			}
			vals := make([]float64, len(pts))
			for i, p := range pts {
				vals[i] = p.V
			}
			label := name
			if r := labelValue(name, "route"); r != "" {
				label = "latency p99 " + r
			}
			lines = append(lines, fmt.Sprintf("%-38s %s  %.4f\n", label, sparkline(vals, 40), vals[len(vals)-1])...)
		}
		if len(lines) > 0 {
			w("\n%s", lines)
		}
	}

	// Experiment table.
	if len(exps) > 0 {
		w("\n%-8s %-16s %-10s %-12s %5s %6s %9s\n",
			"ID", "TENANT", "STATE", "WORKLOAD", "HELD", "SHARE", "BEST")
		for _, e := range exps {
			w("%-8s %-16s %-10s %-12s %5d %6d %9.4f\n",
				e.ID, e.Tenant, e.State, e.Workload, e.HeldSlots, e.Share, e.Best)
		}
	}
	return string(b)
}

// getJSONAnyStatus decodes a JSON body regardless of HTTP status
// (health endpoints carry their report on 503 too).
func getJSONAnyStatus(client *http.Client, url string, v interface{}) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}
