// Command hdtop renders a live terminal dashboard for a running
// HyperDrive experiment (or node agent) by polling its introspection
// endpoint: the POP slot division, the per-job classification table,
// decision latency quantiles, and the scheduler's action counters.
//
//	hdtop -addr localhost:8089
//	hdtop -addr localhost:8089 -once        # one snapshot, no clearing
//	hdtop -addr localhost:8089 -interval 5s
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"time"

	"github.com/hyperdrive-ml/hyperdrive/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hdtop:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("hdtop", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "localhost:8089", "introspection endpoint address (host:port)")
		server   = fs.String("server", "", "hyperdrived address (host:port) — fleet mode: per-tenant fair share, API latency, hosted experiments")
		interval = fs.Duration("interval", 2*time.Second, "poll interval")
		once     = fs.Bool("once", false, "print one snapshot and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	target := *addr
	if *server != "" {
		target = *server
	}
	base := "http://" + target
	client := &http.Client{Timeout: 5 * time.Second}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)

	for {
		var frame string
		if *server != "" {
			snap, exps, health, hist, err := pollFleet(client, base)
			if err != nil {
				return err
			}
			frame = renderFleet(target, snap, exps, health, hist, time.Now())
		} else {
			snap, jobs, hist, err := poll(client, base)
			if err != nil {
				return err
			}
			frame = render(target, snap, jobs, hist, time.Now())
		}
		if !*once {
			fmt.Fprint(out, "\x1b[2J\x1b[H") // clear screen, home cursor
		}
		fmt.Fprint(out, frame)
		if *once {
			return nil
		}
		select {
		case <-sig:
			return nil
		case <-time.After(*interval):
		}
	}
}

// poll fetches one metrics snapshot, the job table, and (when the
// server has the history store enabled) the metric time series.
func poll(client *http.Client, base string) (obs.Snapshot, []obs.JobRow, map[string][]obs.HistoryPoint, error) {
	var snap obs.Snapshot
	if err := getJSON(client, base+"/metrics.json", &snap); err != nil {
		return snap, nil, nil, err
	}
	var jobs []obs.JobRow
	if err := getJSON(client, base+"/jobs", &jobs); err != nil {
		return snap, nil, nil, err
	}
	// History is optional: older servers (or runs without the store)
	// return 404, which just hides the sparklines.
	var hist map[string][]obs.HistoryPoint
	if err := getJSON(client, base+"/debug/obs/history", &hist); err != nil {
		hist = nil
	}
	return snap, jobs, hist, nil
}

func getJSON(client *http.Client, url string, v interface{}) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// render draws one dashboard frame. Pure function of its inputs so it
// can be tested without a server.
func render(addr string, s obs.Snapshot, jobs []obs.JobRow, hist map[string][]obs.HistoryPoint, now time.Time) string {
	var b []byte
	w := func(format string, args ...interface{}) {
		b = append(b, fmt.Sprintf(format, args...)...)
	}

	w("hdtop — %s — %s\n\n", addr, now.Format("15:04:05"))

	// Slot division and occupancy.
	w("slots  total %-4.0f busy %-4.0f promising %-4.0f opportunistic %-4.0f threshold %.4f\n",
		s.Gauges[obs.SlotsTotal], s.Gauges[obs.SlotsBusy],
		s.Gauges[obs.PoolPromisingSlots], s.Gauges[obs.PoolOpportunisticSlots],
		s.Gauges[obs.ClassificationThreshold])
	w("jobs   active %-3.0f suspended %-3.0f promising %-3.0f opportunistic %-3.0f best %.4f\n\n",
		s.Gauges[obs.JobsActive], s.Gauges[obs.JobsSuspended],
		s.Gauges[obs.PoolPromisingJobs], s.Gauges[obs.PoolOpportunisticJobs],
		s.Gauges[obs.BestMetric])

	// Scheduler activity.
	w("epochs %-7d starts %-5d resumes %-5d suspends %-5d terminations %-5d completions %-5d\n",
		s.Counters[obs.EpochsTotal], s.Counters[obs.StartsTotal],
		s.Counters[obs.ResumesTotal], s.Counters[obs.SuspendsTotal],
		s.Counters[obs.TerminationsTotal], s.Counters[obs.CompletionsTotal])
	w("decisions  continue %-6d suspend %-6d terminate %-6d fits %-6d fit errors %-4d\n",
		s.Counters[obs.DecisionsTotal("continue")],
		s.Counters[obs.DecisionsTotal("suspend")],
		s.Counters[obs.DecisionsTotal("terminate")],
		s.Counters[obs.MCMCFitsTotal], s.Counters[obs.MCMCFitErrorsTotal])

	if h, ok := s.Histograms[obs.DecisionLatencySeconds]; ok && h.Count > 0 {
		w("latency    decisions p50 %s p90 %s p99 %s (n=%d)\n",
			fmtDur(h.P50), fmtDur(h.P90), fmtDur(h.P99), h.Count)
	}
	if h, ok := s.Histograms[obs.MCMCFitDurationSeconds]; ok && h.Count > 0 {
		w("latency    mcmc fits p50 %s p90 %s p99 %s (n=%d)\n",
			fmtDur(h.P50), fmtDur(h.P90), fmtDur(h.P99), h.Count)
	}
	// Go runtime health (populated by the runtime sampler).
	if g, ok := s.Gauges[obs.GoGoroutines]; ok {
		w("runtime    goroutines %-5.0f heap %s", g, fmtBytes(s.Gauges[obs.GoHeapBytes]))
		if h, ok := s.Histograms[obs.GoGCPauseSeconds]; ok && h.Count > 0 {
			w("  gc pauses p50 %s p99 %s (n=%d)", fmtDur(h.P50), fmtDur(h.P99), h.Count)
		}
		w("\n")
	}
	if d := s.Counters[obs.EventLogDroppedTotal]; d > 0 {
		w("WARNING    event log dropping records: %d lost\n", d)
	}

	// Sparklines from the history store (absent on servers without it).
	if len(hist) > 0 {
		w("\n")
		for _, name := range []string{obs.BestMetric, obs.SlotsBusy, obs.JobsActive, obs.QualityBrierScore} {
			if pts := hist[name]; len(pts) > 1 {
				vals := make([]float64, len(pts))
				for i, p := range pts {
					vals[i] = p.V
				}
				w("%-34s %s  %.4f\n", name, sparkline(vals, 40), vals[len(vals)-1])
			}
		}
	}

	// Classification table.
	if len(jobs) > 0 {
		w("\n%-12s %-11s %-14s %6s %9s %7s %12s\n",
			"JOB", "STATE", "CLASS", "EPOCH", "BEST", "CONF", "ERT")
		for _, j := range jobs {
			ert := ""
			if j.ERTSeconds > 0 {
				ert = (time.Duration(j.ERTSeconds * float64(time.Second))).Truncate(time.Second).String()
			}
			w("%-12s %-11s %-14s %6d %9.4f %7.3f %12s\n",
				j.Job, j.State, j.Class, j.Epoch, j.Best, j.Confidence, ert)
		}
	}
	return string(b)
}

// sparkline renders a series as unicode block characters, downsampled
// to at most width columns by bucket means.
func sparkline(vals []float64, width int) string {
	if len(vals) == 0 {
		return ""
	}
	if len(vals) > width {
		bucketed := make([]float64, width)
		for i := 0; i < width; i++ {
			lo, hi := i*len(vals)/width, (i+1)*len(vals)/width
			if hi <= lo {
				hi = lo + 1
			}
			var sum float64
			for _, v := range vals[lo:hi] {
				sum += v
			}
			bucketed[i] = sum / float64(hi-lo)
		}
		vals = bucketed
	}
	min, max := vals[0], vals[0]
	for _, v := range vals {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	var sb []rune
	for _, v := range vals {
		idx := 0
		if max > min {
			idx = int((v - min) / (max - min) * float64(len(blocks)-1))
		}
		sb = append(sb, blocks[idx])
	}
	return string(sb)
}

// fmtBytes renders a byte quantity at a human scale.
func fmtBytes(b float64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGiB", b/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", b/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", b/(1<<10))
	default:
		return fmt.Sprintf("%.0fB", b)
	}
}

// fmtDur renders a seconds quantity at a human scale.
func fmtDur(seconds float64) string {
	d := time.Duration(seconds * float64(time.Second))
	switch {
	case d < time.Millisecond:
		return d.String()
	case d < time.Second:
		return d.Truncate(time.Millisecond).String()
	default:
		return d.Truncate(10 * time.Millisecond).String()
	}
}
