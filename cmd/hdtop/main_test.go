package main

import (
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"github.com/hyperdrive-ml/hyperdrive/internal/obs"
)

func sampleRegistry() *obs.Registry {
	reg := obs.NewRegistry()
	reg.Counter(obs.EpochsTotal).Add(120)
	reg.Counter(obs.DecisionsTotal("continue")).Add(100)
	reg.Counter(obs.DecisionsTotal("suspend")).Add(15)
	reg.Counter(obs.DecisionsTotal("terminate")).Add(5)
	reg.Counter(obs.MCMCFitsTotal).Add(24)
	reg.Gauge(obs.SlotsTotal).Set(4)
	reg.Gauge(obs.SlotsBusy).Set(3)
	reg.Gauge(obs.PoolPromisingSlots).Set(3)
	reg.Gauge(obs.PoolOpportunisticSlots).Set(1)
	reg.Gauge(obs.ClassificationThreshold).Set(0.71)
	reg.Gauge(obs.BestMetric).Set(0.8421)
	h := reg.Histogram(obs.DecisionLatencySeconds)
	for i := 0; i < 50; i++ {
		h.Observe(0.002)
	}
	reg.PublishJobTable([]obs.JobRow{
		{Job: "job-1", State: "running", Class: "promising", Epoch: 12, Best: 0.81, Confidence: 0.93, ERTSeconds: 340},
		{Job: "job-2", State: "suspended", Class: "opportunistic", Epoch: 4, Best: 0.55, Confidence: 0.40},
		{Job: "job-3", State: "terminated", Class: "poor", Epoch: 3, Best: 0.31},
	})
	return reg
}

func TestRenderDashboard(t *testing.T) {
	reg := sampleRegistry()
	now := time.Date(2026, 8, 5, 10, 30, 0, 0, time.UTC)
	out := render("localhost:8089", reg.Snapshot(), reg.JobTable(), nil, now)

	for _, want := range []string{
		"hdtop — localhost:8089",
		"threshold 0.7100",
		"epochs 120",
		"continue 100",
		"suspend 15",
		"terminate 5",
		"fits 24",
		"p50",
		"JOB",
		"job-1",
		"promising",
		"opportunistic",
		"poor",
		"5m40s", // job-1's 340s ERT
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q\n%s", want, out)
		}
	}
	// No latency line families the sample did not populate.
	if strings.Contains(out, "mcmc fits p50") {
		t.Error("rendered an mcmc latency line without samples")
	}
	if strings.Contains(out, "runtime") {
		t.Error("rendered a runtime line without runtime gauges")
	}
	if strings.Contains(out, "WARNING") {
		t.Error("rendered a drop warning without drops")
	}
}

func TestRenderSparklines(t *testing.T) {
	reg := sampleRegistry()
	reg.EnableHistory(0)
	base := time.Date(2026, 8, 5, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 10; i++ {
		reg.Gauge(obs.BestMetric).Set(0.5 + float64(i)*0.03)
		reg.SampleHistory(base.Add(time.Duration(i) * time.Second))
	}
	out := render("x", reg.Snapshot(), nil, reg.History().Snapshot(), base)
	if !strings.Contains(out, obs.BestMetric) || !strings.Contains(out, "█") {
		t.Errorf("missing history sparkline:\n%s", out)
	}
	// Without history the section disappears entirely.
	out = render("x", reg.Snapshot(), nil, nil, base)
	if strings.Contains(out, "█") {
		t.Errorf("sparkline rendered without history:\n%s", out)
	}
}

func TestRenderRuntimeLine(t *testing.T) {
	reg := sampleRegistry()
	stop := obs.StartRuntimeSampler(reg, time.Hour) // immediate first sample
	defer stop()
	out := render("x", reg.Snapshot(), nil, nil, time.Date(2026, 8, 5, 0, 0, 0, 0, time.UTC))
	if !strings.Contains(out, "runtime") || !strings.Contains(out, "goroutines") || !strings.Contains(out, "heap") {
		t.Errorf("missing runtime telemetry line:\n%s", out)
	}
}

func TestFmtBytes(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{512, "512B"},
		{4 << 10, "4.0KiB"},
		{3 << 20, "3.0MiB"},
		{2 << 30, "2.0GiB"},
	}
	for _, c := range cases {
		if got := fmtBytes(c.in); got != c.want {
			t.Errorf("fmtBytes(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestRenderDropWarning(t *testing.T) {
	reg := sampleRegistry()
	reg.Counter(obs.EventLogDroppedTotal).Add(7)
	out := render("x", reg.Snapshot(), nil, nil, time.Date(2026, 8, 5, 0, 0, 0, 0, time.UTC))
	if !strings.Contains(out, "WARNING") || !strings.Contains(out, "7 lost") {
		t.Errorf("missing drop warning:\n%s", out)
	}
}

func TestRunOnceAgainstServer(t *testing.T) {
	reg := sampleRegistry()
	srv := httptest.NewServer(obs.Handler(reg, obs.HandlerOptions{}))
	defer srv.Close()
	addr := strings.TrimPrefix(srv.URL, "http://")

	f, err := os.CreateTemp(t.TempDir(), "hdtop")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := run([]string{"-addr", addr, "-once"}, f); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "epochs 120") {
		t.Errorf("one-shot output missing metrics:\n%s", b)
	}
}

func TestFmtDur(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0.0000005, "500ns"},
		{0.0025, "2ms"},
		{3.25, "3.25s"},
	}
	for _, c := range cases {
		if got := fmtDur(c.in); got != c.want {
			t.Errorf("fmtDur(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}
