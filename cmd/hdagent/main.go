// Command hdagent runs a HyperDrive node agent (paper §4.2, component
// ⑥): a daemon that executes training jobs on behalf of a remote
// scheduler, streams application statistics, optionally computes
// learning-curve predictions locally (distributed prediction, §5.2),
// and implements suspend/resume via checkpoint images.
//
//	hdagent -listen :7070 -slots 2 -speedup 600 -predict
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"time"

	"github.com/hyperdrive-ml/hyperdrive/internal/chaos"
	"github.com/hyperdrive-ml/hyperdrive/internal/checkpoint"
	"github.com/hyperdrive-ml/hyperdrive/internal/clock"
	"github.com/hyperdrive-ml/hyperdrive/internal/cluster"
	"github.com/hyperdrive-ml/hyperdrive/internal/curve"
	"github.com/hyperdrive-ml/hyperdrive/internal/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hdagent:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hdagent", flag.ContinueOnError)
	var (
		listen   = fs.String("listen", ":7070", "listen address")
		id       = fs.String("id", "", "agent id (defaults to listen address)")
		slots    = fs.Int("slots", 1, "concurrent training slots")
		speedup  = fs.Float64("speedup", 600, "clock compression factor")
		ckpt     = fs.String("checkpoint", "framework", "snapshot model: framework | criu")
		predict  = fs.Bool("predict", false, "run curve prediction locally (§5.2 distributed prediction)")
		budget   = fs.String("predictor", "fast", "prediction budget: fast | paper | original")
		seedFlag = fs.Int64("seed", 1, "checkpoint model seed")
		obsAddr  = fs.String("obs", "", "serve the introspection endpoint (/metrics, /metrics.json) on this address")
		pprof    = fs.Bool("pprof", false, "mount /debug/pprof/ on the introspection endpoint")
		traceOut = fs.String("trace-out", "", "write a Chrome trace of this agent's job activity to this file on shutdown")

		// Fault-injection knobs (testing the scheduler's fault tolerance
		// against a real agent): every accepted connection is wrapped in
		// a deterministic chaos conn.
		chaosDelay  = fs.Duration("chaos-delay", 0, "inject this base latency before every read/write")
		chaosJitter = fs.Float64("chaos-jitter", 0, "spread -chaos-delay by ± this fraction (0..1)")
		chaosSeed   = fs.Int64("chaos-seed", 1, "seed for the chaos schedule (per-conn seeds are derived)")
		chaosDrop   = fs.Int("chaos-drop-after", 0, "kill each connection after N reads (0 = never)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	mode := checkpoint.Framework
	switch *ckpt {
	case "framework":
	case "criu":
		mode = checkpoint.CRIU
	default:
		return fmt.Errorf("unknown checkpoint mode %q", *ckpt)
	}

	var reg *obs.Registry
	if *obsAddr != "" || *traceOut != "" {
		// The trace's span parents come from the registry's tracer, so
		// -trace-out implies an in-process registry even without -obs.
		reg = obs.NewRegistry()
	}
	var sink *obs.TraceWriter
	if *traceOut != "" {
		sink = obs.NewTraceWriter()
	}

	opts := cluster.AgentOptions{
		ID:             *id,
		Slots:          *slots,
		Clock:          clock.NewScaled(time.Now(), *speedup),
		CheckpointMode: mode,
		Seed:           *seedFlag,
		Obs:            reg,
		TraceSink:      sink,
		Logf:           log.Printf,
	}
	if *predict {
		var cfg curve.Config
		switch *budget {
		case "fast":
			cfg = curve.FastConfig()
		case "paper":
			cfg = curve.PaperConfig()
		case "original":
			cfg = curve.OriginalConfig()
		default:
			return fmt.Errorf("unknown predictor budget %q", *budget)
		}
		p, err := curve.NewPredictor(cfg)
		if err != nil {
			return err
		}
		opts.Predictor = p
	}

	agent, err := cluster.NewAgent(opts)
	if err != nil {
		return err
	}
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	if *chaosDelay > 0 || *chaosDrop > 0 {
		l = chaos.NewListener(l, chaos.Options{
			Seed:           *chaosSeed,
			Delay:          *chaosDelay,
			Jitter:         *chaosJitter,
			FailReadsAfter: *chaosDrop,
		})
		log.Printf("hdagent: chaos enabled (delay %v ±%g, drop-after %d, seed %d)",
			*chaosDelay, *chaosJitter, *chaosDrop, *chaosSeed)
	}
	log.Printf("hdagent: listening on %s with %d slots (speedup %gx, checkpoint %s, predict %v)",
		l.Addr(), *slots, *speedup, mode, *predict)

	var obsSrv *http.Server
	if *obsAddr != "" {
		ol, err := net.Listen("tcp", *obsAddr)
		if err != nil {
			return fmt.Errorf("obs listen: %w", err)
		}
		obsSrv = &http.Server{Handler: obs.Handler(reg, obs.HandlerOptions{Pprof: *pprof})}
		go obsSrv.Serve(ol)
		log.Printf("hdagent: introspection endpoint on %s (pprof %v)", ol.Addr(), *pprof)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	go func() {
		<-sig
		log.Print("hdagent: shutting down")
		agent.Close()
		l.Close()
		if obsSrv != nil {
			obsSrv.Close()
		}
	}()
	err = agent.Serve(l)
	if *traceOut != "" {
		if werr := sink.WriteFile(*traceOut); werr != nil {
			return fmt.Errorf("trace export: %w", werr)
		}
		log.Printf("hdagent: wrote trace to %s", *traceOut)
	}
	return err
}
