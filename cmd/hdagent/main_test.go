package main

import (
	"testing"
)

func TestRunFlagValidation(t *testing.T) {
	if err := run([]string{"-checkpoint", "nope", "-listen", "127.0.0.1:0"}); err == nil {
		t.Fatal("accepted unknown checkpoint mode")
	}
	if err := run([]string{"-predict", "-predictor", "nope", "-listen", "127.0.0.1:0"}); err == nil {
		t.Fatal("accepted unknown predictor budget")
	}
	if err := run([]string{"-listen", "not-an-address"}); err == nil {
		t.Fatal("accepted invalid listen address")
	}
}
