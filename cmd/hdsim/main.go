// Command hdsim replays a workload trace through the discrete-event
// simulator (paper §7) under one or more scheduling policies and
// reports time-to-target and job statistics.
//
//	hdsim -trace cifar.trace -policies pop,bandit,earlyterm,default -machines 4
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/hyperdrive-ml/hyperdrive"
	"github.com/hyperdrive-ml/hyperdrive/internal/stats"
	"github.com/hyperdrive-ml/hyperdrive/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hdsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hdsim", flag.ContinueOnError)
	var (
		tracePath = fs.String("trace", "trace.json", "trace file to replay")
		policies  = fs.String("policies", "pop,bandit,earlyterm,default", "comma-separated policies")
		machines  = fs.Int("machines", 4, "slots")
		orders    = fs.Int("orders", 1, "number of random configuration orders to replay")
		maxDur    = fs.Duration("max-duration", 7*24*time.Hour, "Tmax")
		budget    = fs.String("predictor", "fast", "curve predictor budget")
		traceOut  = fs.String("trace-out", "", "write a Chrome trace (virtual-clock timestamps) of the first policy's first replay to this file")
		quality   = fs.String("quality-out", "", "write the search-quality audit log (JSONL) of each policy's first replay to this file; with multiple policies, files are suffixed .<policy>")
		gen       = fs.String("gen", "", "generate the trace from this workload (cifar10, lunarlander) instead of reading -trace")
		genJobs   = fs.Int("gen-jobs", 32, "configurations to collect with -gen")
		genSeed   = fs.Int64("gen-seed", 1, "sampling seed for -gen")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var base *hyperdrive.Trace
	var err error
	if *gen != "" {
		base, err = hyperdrive.CollectTrace(*gen, *genJobs, *genSeed)
	} else {
		base, err = trace.ReadFile(*tracePath)
	}
	if err != nil {
		return err
	}
	fmt.Printf("trace: %s, %d jobs, %d machines, %d order(s)\n\n",
		base.Workload, len(base.Jobs), *machines, *orders)
	fmt.Printf("%-10s %-8s %12s %12s %8s %8s %8s\n",
		"policy", "reached", "median-ttt", "max-ttt", "susp", "term", "compl")

	polNames := strings.Split(*policies, ",")
	for pi, polName := range polNames {
		var ttts []float64
		var reached, susp, term, compl int
		for o := 0; o < *orders; o++ {
			tr := base
			if o > 0 {
				tr = base.Permute(int64(o))
			}
			scfg := hyperdrive.SimConfig{
				Trace:           tr,
				Policy:          polName,
				Machines:        *machines,
				MaxDuration:     *maxDur,
				StopAtTarget:    true,
				PredictorBudget: *budget,
			}
			// The Chrome trace covers one replay: the first policy on the
			// unpermuted order.
			if pi == 0 && o == 0 {
				scfg.TraceOut = *traceOut
			}
			// The quality audit covers each policy's unpermuted replay, so
			// hdreport can compare policies side by side.
			if *quality != "" && o == 0 {
				scfg.QualityOut = *quality
				if len(polNames) > 1 {
					scfg.QualityOut = *quality + "." + polName
				}
			}
			res, err := hyperdrive.RunSimulation(scfg)
			if err != nil {
				return fmt.Errorf("policy %s: %w", polName, err)
			}
			if res.Reached {
				reached++
				ttts = append(ttts, res.TimeToTarget.Hours())
			}
			susp += res.Suspends
			term += res.Terminations
			compl += res.Completions
		}
		med, max := "-", "-"
		if len(ttts) > 0 {
			med = fmt.Sprintf("%.2fh", stats.Percentile(ttts, 50))
			max = fmt.Sprintf("%.2fh", stats.Percentile(ttts, 100))
		}
		fmt.Printf("%-10s %3d/%-4d %12s %12s %8d %8d %8d\n",
			polName, reached, *orders, med, max, susp, term, compl)
	}
	if *traceOut != "" {
		fmt.Printf("\nwrote Chrome trace to %s (load in Perfetto or chrome://tracing)\n", *traceOut)
	}
	if *quality != "" {
		fmt.Printf("\nwrote quality audit log(s) to %s (render with hdreport)\n", *quality)
	}
	return nil
}
