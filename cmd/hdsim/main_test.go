package main

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/hyperdrive-ml/hyperdrive"
)

func quietStdout(t *testing.T) {
	t.Helper()
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	t.Cleanup(func() { os.Stdout = old; devnull.Close() })
}

func writeTrace(t *testing.T) string {
	t.Helper()
	tr, err := hyperdrive.CollectTrace("cifar10", 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.json")
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunPolicies(t *testing.T) {
	quietStdout(t)
	path := writeTrace(t)
	if err := run([]string{"-trace", path, "-policies", "bandit,default", "-machines", "2", "-orders", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	quietStdout(t)
	if err := run([]string{"-trace", "/nonexistent"}); err == nil {
		t.Fatal("accepted missing trace")
	}
	path := writeTrace(t)
	if err := run([]string{"-trace", path, "-policies", "nope"}); err == nil {
		t.Fatal("accepted unknown policy")
	}
}
