// Command hdcurve runs the learning-curve predictor standalone: given
// an observed metric prefix (one value per line, or comma-separated),
// it fits the eleven-family ensemble posterior and prints the
// extrapolated curve with credible bands and target probabilities —
// the §3.1 machinery as a debugging and what-if tool.
//
//	# predict where a curve at 30 epochs is heading by epoch 120
//	hdcurve -in curve.txt -horizon 120 -target 0.77
//
//	# inline observations
//	hdcurve -obs 0.12,0.19,0.25,0.31,0.36 -horizon 120 -target 0.77
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/hyperdrive-ml/hyperdrive/internal/curve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hdcurve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hdcurve", flag.ContinueOnError)
	var (
		inPath  = fs.String("in", "", "file of observed metrics (one per line; # comments allowed)")
		obsFlag = fs.String("obs", "", "comma-separated observed metrics (alternative to -in)")
		horizon = fs.Int("horizon", 120, "prediction horizon in epochs")
		target  = fs.Float64("target", 0, "also print P(y(m) >= target) when non-zero")
		budget  = fs.String("predictor", "fast", "MCMC budget: fast | paper | original")
		step    = fs.Int("step", 5, "epochs between printed prediction rows")
		seed    = fs.Int64("seed", 1, "sampler seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	obs, err := readObservations(*inPath, *obsFlag)
	if err != nil {
		return err
	}
	if len(obs) < curve.MinObservations {
		return fmt.Errorf("need at least %d observations, have %d", curve.MinObservations, len(obs))
	}

	var cfg curve.Config
	switch *budget {
	case "fast":
		cfg = curve.FastConfig()
	case "paper":
		cfg = curve.PaperConfig()
	case "original":
		cfg = curve.OriginalConfig()
	default:
		return fmt.Errorf("unknown predictor budget %q", *budget)
	}
	pred, err := curve.NewPredictor(cfg)
	if err != nil {
		return err
	}
	post, err := pred.Fit(obs, *horizon, *seed)
	if err != nil {
		return err
	}

	fmt.Printf("fitted %d observations; %d posterior samples, acceptance %.2f\n",
		len(obs), post.NumSamples(), post.AcceptRate())
	fmt.Printf("models: %s\n\n", pred.ModelNames())
	fmt.Printf("%-7s %-10s %-10s %-10s", "epoch", "observed", "predicted", "std")
	if *target != 0 {
		fmt.Printf(" %-12s", fmt.Sprintf("P(>=%.3g)", *target))
	}
	fmt.Println()
	if *step < 1 {
		*step = 1
	}
	for e := 1; e <= *horizon; e += *step {
		mean, std := post.Predict(e)
		observed := "-"
		if e <= len(obs) {
			observed = fmt.Sprintf("%.4f", obs[e-1])
		}
		fmt.Printf("%-7d %-10s %-10.4f %-10.4f", e, observed, mean, std)
		if *target != 0 {
			fmt.Printf(" %-12.4f", post.ProbAtLeast(e, *target))
		}
		fmt.Println()
	}
	if *target != 0 {
		fmt.Printf("\nP(y(%d) >= %g) = %.4f\n", *horizon, *target, post.ProbAtLeast(*horizon, *target))
	}
	return nil
}

// readObservations loads metrics from a file or the inline flag.
func readObservations(path, inline string) ([]float64, error) {
	var fields []string
	switch {
	case path != "" && inline != "":
		return nil, fmt.Errorf("use -in or -obs, not both")
	case inline != "":
		fields = strings.Split(inline, ",")
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			fields = append(fields, strings.Split(line, ",")...)
		}
		if err := sc.Err(); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("provide observations via -in <file> or -obs <v1,v2,...>")
	}
	out := make([]float64, 0, len(fields))
	for _, fstr := range fields {
		fstr = strings.TrimSpace(fstr)
		if fstr == "" {
			continue
		}
		v, err := strconv.ParseFloat(fstr, 64)
		if err != nil {
			return nil, fmt.Errorf("bad observation %q: %w", fstr, err)
		}
		out = append(out, v)
	}
	return out, nil
}
