package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestReadObservationsInline(t *testing.T) {
	obs, err := readObservations("", "0.1, 0.2,0.3")
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 3 || obs[1] != 0.2 {
		t.Fatalf("obs = %v", obs)
	}
}

func TestReadObservationsFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "curve.txt")
	content := "# a comment\n0.1\n0.2,0.3\n\n0.4\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	obs, err := readObservations(path, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 4 || obs[3] != 0.4 {
		t.Fatalf("obs = %v", obs)
	}
}

func TestReadObservationsErrors(t *testing.T) {
	if _, err := readObservations("", ""); err == nil {
		t.Fatal("accepted no input")
	}
	if _, err := readObservations("x", "y"); err == nil {
		t.Fatal("accepted both inputs")
	}
	if _, err := readObservations("", "0.1,zebra"); err == nil {
		t.Fatal("accepted non-numeric value")
	}
	if _, err := readObservations("/nonexistent/file", ""); err == nil {
		t.Fatal("accepted missing file")
	}
}

func TestRunValidatesFlags(t *testing.T) {
	if err := run([]string{"-obs", "0.1,0.2"}); err == nil {
		t.Fatal("accepted too few observations")
	}
	if err := run([]string{"-obs", "0.1,0.2,0.3,0.4,0.5", "-predictor", "nope"}); err == nil {
		t.Fatal("accepted unknown predictor budget")
	}
}

func TestRunEndToEnd(t *testing.T) {
	// Redirect stdout to keep test output clean.
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	defer func() { os.Stdout = old; devnull.Close() }()

	err = run([]string{
		"-obs", "0.12,0.18,0.24,0.29,0.33,0.37,0.40,0.43",
		"-horizon", "60", "-target", "0.6", "-step", "10",
	})
	if err != nil {
		t.Fatal(err)
	}
}
