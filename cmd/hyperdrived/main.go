// Command hyperdrived is the multi-tenant HyperDrive experiment
// service: one long-running process hosting many concurrent
// experiments behind an HTTP/JSON API, with per-tenant weighted
// fair-share of a shared slot pool, admission control, and API rate
// limiting.
//
//	hyperdrived -listen :7070 -machines 16
//	curl -XPOST localhost:7070/v1/experiments \
//	     -d '{"tenant":"alice","workload":"cifar10","maxJobs":20}'
//	curl localhost:7070/v1/experiments/e1
//	curl 'localhost:7070/v1/experiments/e1/events?waitMs=5000'
//	hdtop -addr localhost:7070/v1/experiments/e1/obs
//
// With -agents, slots come from remote node agents (hdagent) instead
// of in-process workers. With -smoke, the server boots on a loopback
// port, submits two tenant experiments, polls them to completion, and
// exits non-zero on any API error — the CI self-test.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/hyperdrive-ml/hyperdrive/internal/checkpoint"
	"github.com/hyperdrive-ml/hyperdrive/internal/clock"
	"github.com/hyperdrive-ml/hyperdrive/internal/cluster"
	"github.com/hyperdrive-ml/hyperdrive/internal/obs"
	"github.com/hyperdrive-ml/hyperdrive/internal/serve"
	"github.com/hyperdrive-ml/hyperdrive/internal/workload"
)

func main() {
	var (
		listen   = flag.String("listen", ":7070", "HTTP listen address")
		machines = flag.Int("machines", 8, "in-process training slots (ignored with -agents)")
		agents   = flag.String("agents", "", "comma-separated node-agent addresses (replaces in-process slots)")
		maxExps  = flag.Int("max-experiments", 16, "admission cap on concurrently active experiments")
		rate     = flag.Float64("rate", 50, "per-tenant API rate limit (requests/sec)")
		burst    = flag.Int("burst", 0, "per-tenant API burst (0: one second's worth)")
		speedup  = flag.Float64("speedup", 600, "experiment-clock compression factor")
		seed     = flag.Int64("seed", 1, "checkpoint-model seed")
		pprof    = flag.Bool("pprof", false, "mount /debug/pprof on the server obs endpoint")
		smoke    = flag.Bool("smoke", false, "boot on loopback, submit two experiments, poll to completion, exit")
	)
	flag.Parse()

	if *smoke {
		// The self-test wants a fast clock and its own port (explicit
		// -listen/-speedup flags still win).
		set := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
		if !set["listen"] {
			*listen = "127.0.0.1:0"
		}
		if !set["speedup"] {
			*speedup = 200000
		}
	}

	if err := run(*listen, *machines, *agents, *maxExps, *rate, *burst, *speedup, *seed, *pprof, *smoke); err != nil {
		fmt.Fprintln(os.Stderr, "hyperdrived:", err)
		os.Exit(1)
	}
}

func run(listen string, machines int, agents string, maxExps int, rate float64, burst int, speedup float64, seed int64, pprof, smoke bool) error {
	logf := func(format string, args ...interface{}) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	clk := clock.NewScaled(time.Now(), speedup)
	events := make(chan cluster.Event, 4096)
	wreg := workload.NewRegistry()
	serverReg := obs.NewRegistry()
	// Fleet history backs hdtop -server sparklines (API latency,
	// per-tenant share/held) off /obs/debug/obs/history.
	serverReg.EnableHistory(512)
	stopSampler := obs.StartHistorySampler(serverReg, 2*time.Second)
	defer stopSampler()

	var exec cluster.Executor
	if agents != "" {
		var execs []cluster.Executor
		for _, addr := range strings.Split(agents, ",") {
			addr = strings.TrimSpace(addr)
			if addr == "" {
				continue
			}
			c, err := cluster.DialAgentSupervised(addr, events, cluster.SupervisorOptions{Obs: serverReg, Logf: logf})
			if err != nil {
				for _, ex := range execs {
					ex.Close()
				}
				return fmt.Errorf("agent %s: %w", addr, err)
			}
			execs = append(execs, c)
		}
		multi, err := cluster.NewMultiExecutor(execs...)
		if err != nil {
			return err
		}
		exec = multi
	} else {
		capturer, err := checkpoint.NewCapturer(checkpoint.Framework, seed+1)
		if err != nil {
			return err
		}
		pool, err := cluster.NewWorkerPool(machines, wreg, clk, capturer, events)
		if err != nil {
			return err
		}
		exec = pool
	}
	defer exec.Close()

	srv, err := serve.NewServer(serve.Options{
		Executor:       exec,
		Events:         events,
		Clock:          clk,
		Registry:       wreg,
		MaxExperiments: maxExps,
		Rate:           rate,
		Burst:          burst,
		Obs:            serverReg,
		Pprof:          pprof,
		Logf:           logf,
	})
	if err != nil {
		return err
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	logf("hyperdrived: serving on %s (%d slots)", ln.Addr(), len(exec.Slots()))

	if smoke {
		return runSmoke("http://" + ln.Addr().String())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	logf("hyperdrived: shutting down")
	return nil
}

// runSmoke is the CI self-test: two tenants submit one experiment
// each, both are polled to completion, and the tenant + events
// surfaces are exercised. Any API error is fatal.
func runSmoke(base string) error {
	client := &http.Client{Timeout: 30 * time.Second}
	submit := func(tenant string, weight float64) (string, error) {
		body := fmt.Sprintf(`{"tenant":%q,"weight":%g,"workload":"cifar10","policy":"default","maxJobs":6,"seed":7}`, tenant, weight)
		resp, err := client.Post(base+"/v1/experiments", "application/json", strings.NewReader(body))
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			return "", fmt.Errorf("submit for %s: HTTP %d", tenant, resp.StatusCode)
		}
		var out struct {
			ID string `json:"id"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			return "", err
		}
		return out.ID, nil
	}

	idA, err := submit("alice", 2)
	if err != nil {
		return err
	}
	idB, err := submit("bob", 1)
	if err != nil {
		return err
	}
	fmt.Printf("smoke: submitted %s (alice) and %s (bob)\n", idA, idB)

	getJSON := func(path string, v interface{}) error {
		resp, err := client.Get(base + path)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("GET %s: HTTP %d", path, resp.StatusCode)
		}
		return json.NewDecoder(resp.Body).Decode(v)
	}

	deadline := time.Now().Add(120 * time.Second)
	states := map[string]string{}
	for _, id := range []string{idA, idB} {
		for {
			if time.Now().After(deadline) {
				return fmt.Errorf("smoke: %s did not finish in time (state %s)", id, states[id])
			}
			var st struct {
				State string  `json:"state"`
				Best  float64 `json:"best"`
				Error string  `json:"error"`
			}
			if err := getJSON("/v1/experiments/"+id, &st); err != nil {
				return err
			}
			states[id] = st.State
			if st.State == "done" {
				fmt.Printf("smoke: %s done (best %.4f)\n", id, st.Best)
				break
			}
			if st.State == "failed" || st.State == "canceled" {
				return fmt.Errorf("smoke: %s ended %s: %s", id, st.State, st.Error)
			}
			time.Sleep(200 * time.Millisecond)
		}
	}

	var tenant serve.TenantStatus
	if err := getJSON("/v1/tenants/alice", &tenant); err != nil {
		return err
	}
	if tenant.Tenant != "alice" {
		return fmt.Errorf("smoke: tenant endpoint returned %q", tenant.Tenant)
	}
	var feed struct {
		Events []json.RawMessage `json:"events"`
	}
	if err := getJSON("/v1/experiments/"+idA+"/events?waitMs=1000", &feed); err != nil {
		return err
	}
	if len(feed.Events) == 0 {
		return fmt.Errorf("smoke: %s event feed is empty", idA)
	}
	var snap obs.Snapshot
	if err := getJSON("/v1/experiments/"+idA+"/obs/metrics.json", &snap); err != nil {
		return err
	}

	// Fleet observability surfaces: the /metrics rollup must carry the
	// serve_* families, and /healthz + /readyz must report a healthy
	// idle fleet (both experiments already finished).
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return err
	}
	text, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("smoke: GET /metrics: HTTP %d", resp.StatusCode)
	}
	for _, want := range []string{
		"hyperdrive_serve_experiments_total 2",
		"hyperdrive_serve_http_request_seconds",
		`hyperdrive_serve_lease_share{tenant="alice"}`,
		`hyperdrive_serve_lease_share{tenant="bob"}`,
	} {
		if !strings.Contains(string(text), want) {
			return fmt.Errorf("smoke: /metrics rollup missing %q", want)
		}
	}
	var health struct {
		Status string `json:"status"`
		Checks []struct {
			Name   string `json:"name"`
			Status string `json:"status"`
		} `json:"checks"`
	}
	if err := getJSON("/healthz", &health); err != nil {
		return err
	}
	if health.Status != "ok" || len(health.Checks) == 0 {
		return fmt.Errorf("smoke: /healthz status %q (%d checks), want ok", health.Status, len(health.Checks))
	}
	var ready struct {
		Ready bool `json:"ready"`
	}
	if err := getJSON("/readyz", &ready); err != nil {
		return err
	}
	if !ready.Ready {
		return fmt.Errorf("smoke: /readyz not ready")
	}
	fmt.Printf("smoke: ok (%d feed events for %s; health %s)\n", len(feed.Events), idA, health.Status)
	return nil
}
